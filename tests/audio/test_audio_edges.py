"""Additional audio-codec edge cases and robustness checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioDecoder, AudioEncoder
from repro.audio.codec import ALLOC_BITS, BAND_BINS, N_BANDS, _allocate_bits
from repro.audio.mdct import FRAME_SAMPLES


class TestBitAllocation:
    def test_budget_respected(self):
        energy = np.ones(N_BANDS)
        allocation = _allocate_bits(energy, budget_bits=BAND_BINS * 10)
        assert allocation.sum() <= 10

    def test_loud_bands_win(self):
        energy = np.ones(N_BANDS) * 1e-6
        energy[3] = 1.0
        allocation = _allocate_bits(energy, budget_bits=BAND_BINS * 4)
        assert allocation[3] == allocation.max()
        assert allocation[3] >= 2

    def test_silent_bands_get_nothing(self):
        energy = np.zeros(N_BANDS)
        energy[0] = 1.0
        allocation = _allocate_bits(energy, budget_bits=BAND_BINS * 20)
        assert allocation[1:].sum() == 0

    def test_allocation_capped(self):
        energy = np.zeros(N_BANDS)
        energy[0] = 1e12
        allocation = _allocate_bits(energy, budget_bits=BAND_BINS * 100)
        assert allocation.max() <= 15
        assert allocation.max() < (1 << ALLOC_BITS)


class TestCodecEdges:
    def test_single_frame_signal(self):
        signal = np.sin(np.linspace(0, 20, FRAME_SAMPLES))
        encoded = AudioEncoder().encode(signal)
        decoded = AudioDecoder().decode(encoded)
        assert decoded.shape == signal.shape

    def test_non_frame_multiple_length(self):
        signal = np.sin(np.linspace(0, 50, FRAME_SAMPLES * 2 + 77))
        encoded = AudioEncoder().encode(signal)
        decoded = AudioDecoder().decode(encoded)
        assert decoded.shape == signal.shape

    def test_impulse_survives(self):
        signal = np.zeros(FRAME_SAMPLES * 3)
        signal[FRAME_SAMPLES + 100] = 0.9
        encoded = AudioEncoder(bits_per_frame=6000).encode(signal)
        decoded = AudioDecoder().decode(encoded)
        peak = int(np.argmax(np.abs(decoded)))
        assert abs(peak - (FRAME_SAMPLES + 100)) <= 2

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_property_decode_never_clips_insanely(self, seed):
        rng = np.random.default_rng(seed)
        signal = rng.uniform(-1, 1, FRAME_SAMPLES * 2)
        decoded = AudioDecoder().decode(AudioEncoder().encode(signal))
        assert np.abs(decoded).max() < 4.0  # bounded even for noise input

    def test_sample_rate_carried(self):
        signal = np.zeros(FRAME_SAMPLES)
        encoded = AudioEncoder().encode(signal, sample_rate=48_000)
        assert encoded.sample_rate == 48_000
        assert encoded.bitrate > 0
