"""Tests for the audio substrate: MDCT, synthesis, codec round trip."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import (
    AudioDecoder,
    AudioEncoder,
    AudioSpec,
    FRAME_SAMPLES,
    SPECTRAL_BINS,
    synthesize_audio,
)
from repro.audio.mdct import analyze, imdct_frame, mdct_frame, synthesize


def snr_db(original: np.ndarray, decoded: np.ndarray) -> float:
    noise = original - decoded
    power = float((original**2).mean())
    noise_power = float((noise**2).mean())
    if noise_power == 0:
        return math.inf
    return 10 * math.log10(power / noise_power)


class TestMdct:
    def test_shapes(self):
        window = np.zeros(2 * FRAME_SAMPLES)
        assert mdct_frame(window).shape == (SPECTRAL_BINS,)
        assert imdct_frame(np.zeros(SPECTRAL_BINS)).shape == (2 * FRAME_SAMPLES,)
        with pytest.raises(ValueError):
            mdct_frame(np.zeros(100))
        with pytest.raises(ValueError):
            imdct_frame(np.zeros(100))

    def test_perfect_reconstruction(self, rng):
        """TDAC: overlap-add of inverse MDCTs reconstructs the signal."""
        samples = rng.standard_normal(FRAME_SAMPLES * 6)
        restored = synthesize(analyze(samples), len(samples))
        assert np.allclose(restored, samples, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_property_reconstruction_any_signal(self, seed):
        rng = np.random.default_rng(seed)
        n = FRAME_SAMPLES * 3 + 123  # non-multiple length
        samples = rng.uniform(-1, 1, n)
        restored = synthesize(analyze(samples), n)
        assert np.allclose(restored, samples, atol=1e-9)

    def test_tone_concentrates_energy(self):
        t = np.arange(FRAME_SAMPLES * 4)
        tone = np.sin(2 * np.pi * 0.05 * t)
        spectra = analyze(tone)
        frame = spectra[2]
        peak_bin = int(np.argmax(np.abs(frame)))
        energy = frame**2
        top = energy[max(0, peak_bin - 3) : peak_bin + 4].sum()
        assert top > 0.9 * energy.sum()


class TestSynthesis:
    def test_deterministic(self):
        spec = AudioSpec(duration_s=0.1)
        assert np.array_equal(synthesize_audio(spec), synthesize_audio(spec))

    def test_range(self):
        signal = synthesize_audio(AudioSpec(duration_s=0.1))
        assert np.abs(signal).max() <= 1.0
        assert np.abs(signal).max() > 0.5


class TestCodecRoundTrip:
    def _signal(self, seconds=0.25):
        return synthesize_audio(AudioSpec(duration_s=seconds))

    def test_roundtrip_quality(self):
        signal = self._signal()
        encoded = AudioEncoder(bits_per_frame=4000).encode(signal)
        decoded = AudioDecoder().decode(encoded)
        assert decoded.shape == signal.shape
        assert snr_db(signal, decoded) > 20.0

    def test_rate_quality_tradeoff(self):
        signal = self._signal()
        coarse = AudioDecoder().decode(AudioEncoder(bits_per_frame=800).encode(signal))
        fine = AudioDecoder().decode(AudioEncoder(bits_per_frame=6000).encode(signal))
        assert snr_db(signal, fine) > snr_db(signal, coarse)

    def test_bitrate_reported(self):
        signal = self._signal()
        encoded = AudioEncoder(bits_per_frame=2400).encode(signal)
        assert 50_000 < encoded.bitrate < 1_000_000

    def test_silence_codes_tiny(self):
        silence = np.zeros(FRAME_SAMPLES * 8)
        encoded = AudioEncoder().encode(silence)
        decoded = AudioDecoder().decode(encoded)
        assert np.allclose(decoded, 0.0, atol=1e-6)
        loud = AudioEncoder().encode(self._signal(0.1))
        assert len(encoded.data) / encoded.n_frames < len(loud.data) / loud.n_frames

    def test_validation(self):
        with pytest.raises(ValueError):
            AudioEncoder(bits_per_frame=0)


class TestInstrumentedAudio:
    def test_characterization_shows_cache_friendliness(self):
        """The paper's Section 1 claim: frame-level audio coding is
        cache-friendly -- near-perfect L1 hit rates, negligible DRAM."""
        from repro.core.machines import SGI_O2
        from repro.trace import TraceRecorder

        hierarchy = SGI_O2.build_hierarchy()
        recorder = TraceRecorder([hierarchy])
        signal = synthesize_audio(AudioSpec(duration_s=0.3))
        encoded = AudioEncoder(recorder=recorder).encode(signal)
        AudioDecoder(recorder=recorder).decode(encoded)
        total = hierarchy.total
        miss_rate = total.l1_misses / total.memory_accesses
        assert miss_rate < 0.002
        assert total.clock.dram_stall_cycles / total.clock.total_cycles < 0.02
