"""The golden-vector gate: stability, drift detection, failure honesty."""

from __future__ import annotations

import json

import pytest

from repro.conformance import golden as golden_module
from repro.conformance.golden import (
    check_golden,
    compute_golden,
    default_golden_path,
    update_golden,
)


@pytest.fixture(scope="module")
def vectors() -> dict:
    """Compute once per module; the gate costs ~1 s of codec+sim work."""
    return compute_golden()


class TestComputeGolden:
    def test_shape_of_the_vector_tree(self, vectors):
        assert set(vectors["bitstreams"]) == {"rect", "shape"}
        assert set(vectors["frames"]) == {"rect", "shape"}
        assert set(vectors["counters"]) == {"table2_cell", "table5_cell"}
        for digest in (*vectors["bitstreams"].values(), *vectors["frames"].values()):
            assert len(digest) == 64 and int(digest, 16) >= 0

    def test_resilience_vector_pins_the_lossy_path(self, vectors):
        resilience = vectors["resilience"]
        assert len(resilience["bitstream"]) == 64
        assert resilience["packets"]["count"] > 0
        assert len(resilience["packets"]["framing"]) == 64
        post_loss = resilience["post_loss"]
        # The pinned channel seed must actually damage the stream, so
        # the digest covers the concealment path, not a clean decode.
        assert post_loss["dropped"] > post_loss["recovered"]
        assert post_loss["concealed_packets"] > 0
        assert len(post_loss["frames"]) == 64

    def test_counters_are_integers(self, vectors):
        for cell in vectors["counters"].values():
            assert cell  # non-empty snapshot
            assert all(isinstance(value, int) for value in cell.values())
            assert "clock" not in cell

    def test_recompute_is_stable(self, vectors):
        """Two computations in one process agree exactly -- the
        whole pipeline is deterministic."""
        assert compute_golden() == vectors


class TestCheckGolden:
    def test_committed_vectors_match_current_tree(self):
        mismatches = check_golden()
        assert mismatches == []

    def test_missing_file_is_a_mismatch_not_a_pass(self, tmp_path):
        mismatches = check_golden(tmp_path / "absent.json")
        assert len(mismatches) == 1
        assert "unreadable" in mismatches[0]

    def test_corrupt_json_is_a_mismatch(self, tmp_path):
        path = tmp_path / "golden.json"
        path.write_text("{ not json")
        assert check_golden(path)

    def test_update_then_check_roundtrip(self, tmp_path):
        path = tmp_path / "golden.json"
        update_golden(path)
        assert check_golden(path) == []

    def test_stale_vector_reports_its_key(self, tmp_path, vectors):
        stale = json.loads(json.dumps(vectors))
        stale["bitstreams"]["rect"] = "0" * 64
        stale["counters"]["table2_cell"]["alu_ops"] += 1
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(stale))
        mismatches = check_golden(path)
        assert any("bitstreams.rect" in line for line in mismatches)
        assert any("counters.table2_cell.alu_ops" in line for line in mismatches)

    def test_extra_committed_key_is_a_mismatch(self, tmp_path, vectors):
        extended = json.loads(json.dumps(vectors))
        extended["counters"]["table9_cell"] = {"alu_ops": 1}
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(extended))
        mismatches = check_golden(path)
        assert any("table9_cell" in line and "<missing>" in line for line in mismatches)


class TestDriftDetection:
    def test_codec_change_fails_the_gate(self, tmp_path, monkeypatch):
        """The acceptance criterion: a one-line quantizer change must
        flip the gate to failing."""
        from repro.codec import encoder as encoder_module

        path = tmp_path / "golden.json"
        update_golden(path)

        original = encoder_module.quantize_any

        def drifted(coefficients, qp, intra, method):
            return original(coefficients, qp + 1, intra, method)

        monkeypatch.setattr(encoder_module, "quantize_any", drifted)
        mismatches = check_golden(path)
        assert mismatches
        assert any("bitstreams" in line for line in mismatches)

    def test_counter_drift_alone_is_caught(self, tmp_path, vectors, monkeypatch):
        """Counter snapshots guard the simulator side independently of
        the codec digests."""
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(vectors))

        drifted = json.loads(json.dumps(vectors))
        for cell in drifted["counters"].values():
            for key in cell:
                cell[key] += 7
        monkeypatch.setattr(
            golden_module, "compute_golden", lambda: drifted
        )
        mismatches = check_golden(path)
        assert len(mismatches) == sum(
            len(cell) for cell in vectors["counters"].values()
        )


class TestDefaultPath:
    def test_points_at_committed_vectors(self):
        path = default_golden_path()
        assert path.name == "golden.json"
        assert path.exists()
        committed = json.loads(path.read_text())
        assert committed["format"] == golden_module.GOLDEN_FORMAT
