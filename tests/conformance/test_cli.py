"""``repro conformance`` / ``repro fuzz`` subcommand behaviour."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.conformance.cli import _fuzz_corpus, conformance_main, fuzz_main


class TestConformanceCommand:
    def test_check_against_committed_vectors(self, capsys):
        assert main(["conformance", "--check"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_is_the_default_action(self, capsys):
        assert main(["conformance"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_update_writes_vectors(self, tmp_path, capsys):
        path = tmp_path / "golden.json"
        assert conformance_main(["--update", "--path", str(path)]) == 0
        assert "updated" in capsys.readouterr().out
        vectors = json.loads(path.read_text())
        assert "bitstreams" in vectors and "counters" in vectors

    def test_check_fails_on_stale_vectors(self, tmp_path, capsys):
        path = tmp_path / "golden.json"
        assert conformance_main(["--update", "--path", str(path)]) == 0
        vectors = json.loads(path.read_text())
        vectors["bitstreams"]["rect"] = "0" * 64
        path.write_text(json.dumps(vectors))
        capsys.readouterr()
        assert conformance_main(["--check", "--path", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "--update" in out  # tells the user the recovery command

    def test_check_and_update_are_exclusive(self):
        with pytest.raises(SystemExit):
            conformance_main(["--check", "--update"])


class TestFuzzCommand:
    def test_corpus_covers_syntax_paths(self):
        corpus = _fuzz_corpus()
        assert set(corpus) == {"rect", "shape", "resync"}
        assert all(
            isinstance(data, bytes) and data for data in corpus.values()
        )

    @pytest.mark.fuzz
    def test_small_smoke_sweep_passes(self, capsys):
        assert main(["fuzz", "--cases", "7"]) == 0
        out = capsys.readouterr().out
        assert "passed" in out
        for name in ("rect", "shape", "resync"):
            assert name in out

    @pytest.mark.fuzz
    def test_tolerant_flag_accepted(self, capsys):
        assert fuzz_main(["--cases", "7", "--tolerant"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_contract_violation_fails_the_run(self, capsys, monkeypatch):
        from repro.codec import decoder as decoder_module

        def explode(self, data, tolerate_errors=False):
            raise KeyError("decoder bug")

        monkeypatch.setattr(
            decoder_module.VopDecoder, "decode_sequence", explode
        )
        assert fuzz_main(["--cases", "3"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "uncaught" in out
