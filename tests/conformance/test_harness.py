"""The sweep harness: outcome classification, budgets, reports.

The tier-1 portion keeps sweeps small; the full 500-case acceptance
sweep rides in :class:`TestAcceptanceSweep` under ``slow``/``fuzz``.
"""

from __future__ import annotations

import time

import pytest

from repro.codec import CodecConfig, VopEncoder
from repro.codec.errors import MalformedStreamError
from repro.conformance.fuzzer import FuzzCase
from repro.conformance.harness import (
    CaseResult,
    SweepReport,
    decode_case,
    run_corruption_sweep,
)
from repro.video.synthesis import SceneSpec, SyntheticScene


@pytest.fixture(scope="module")
def pristine() -> bytes:
    scene = SyntheticScene(SceneSpec.default(48, 32))
    frames = [scene.frame(index) for index in range(3)]
    config = CodecConfig(48, 32, qp=10, gop_size=3, m_distance=1)
    return VopEncoder(config).encode_sequence(frames).data


class _Identity(FuzzCase):
    """A case whose apply() leaves the stream pristine."""

    def apply(self, data: bytes) -> bytes:
        return data


class _Crafted(FuzzCase):
    """A case whose apply() substitutes fixed bytes."""

    def __init__(self, payload: bytes):
        super().__init__(seed=0, mutation="bitflip")
        object.__setattr__(self, "_payload", payload)

    def apply(self, data: bytes) -> bytes:
        return self._payload


class TestDecodeCase:
    def test_pristine_stream_decodes(self, pristine):
        result = decode_case(pristine, _Identity(seed=0, mutation="bitflip"))
        assert result.outcome == "decoded"
        assert result.ok

    def test_garbage_is_rejected_with_typed_error(self):
        result = decode_case(b"\x00", _Crafted(b"not an mpeg-4 stream"))
        assert result.outcome == "rejected"
        assert result.ok
        assert result.detail  # names the BitstreamError subclass

    def test_uncaught_exception_is_a_contract_violation(self, monkeypatch):
        from repro.codec import decoder as decoder_module

        def explode(self, data, tolerate_errors=False):
            raise KeyError("decoder bug")

        monkeypatch.setattr(
            decoder_module.VopDecoder, "decode_sequence", explode
        )
        result = decode_case(b"\x00", _Identity(seed=0, mutation="bitflip"))
        assert result.outcome == "uncaught"
        assert not result.ok
        assert "KeyError" in result.detail

    def test_hang_detection_fires(self, monkeypatch):
        from repro.codec import decoder as decoder_module

        def spin(self, data, tolerate_errors=False):
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pass

        monkeypatch.setattr(decoder_module.VopDecoder, "decode_sequence", spin)
        started = time.monotonic()
        result = decode_case(
            b"\x00", _Identity(seed=0, mutation="bitflip"), time_budget_s=0.2
        )
        assert result.outcome == "hang"
        assert not result.ok
        assert time.monotonic() - started < 5

    def test_budget_armed_off_main_thread(self, pristine, monkeypatch):
        # The shared deadline utility falls back to an async-exception
        # timer off the main thread, so hang detection works from worker
        # threads too (SIGALRM would be main-thread-only).
        import threading

        from repro.codec import decoder as decoder_module

        def spin(self, data, tolerate_errors=False):
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pass

        monkeypatch.setattr(decoder_module.VopDecoder, "decode_sequence", spin)
        results = []

        def worker():
            results.append(
                decode_case(
                    b"\x00",
                    _Identity(seed=0, mutation="bitflip"),
                    time_budget_s=0.2,
                )
            )

        started = time.monotonic()
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert results[0].outcome == "hang"
        assert time.monotonic() - started < 10

    def test_pristine_decode_off_main_thread(self, pristine):
        import threading

        results = []

        def worker():
            results.append(
                decode_case(pristine, _Identity(seed=0, mutation="bitflip"))
            )

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert results[0].outcome == "decoded"


class TestSweepReport:
    def test_counts_and_failures(self):
        case = FuzzCase(seed=0, mutation="bitflip")
        report = SweepReport(
            results=[
                CaseResult(case, "decoded"),
                CaseResult(case, "concealed", "2 concealment event(s)"),
                CaseResult(case, "rejected", "VlcError"),
                CaseResult(case, "hang", "exceeded 5.0s budget"),
            ]
        )
        assert report.counts == {
            "decoded": 1, "concealed": 1, "rejected": 1, "hang": 1,
        }
        assert len(report.failures) == 1
        assert not report.ok
        assert "hang" in report.summary()
        assert "concealed=1" in report.summary()

    def test_empty_report_is_ok(self):
        assert SweepReport().ok


class TestSmallSweep:
    def test_sweep_is_deterministic_and_clean(self, pristine):
        first = run_corruption_sweep(pristine, n_cases=35, master_seed=11)
        second = run_corruption_sweep(pristine, n_cases=35, master_seed=11)
        assert first.ok, first.summary()
        assert [r.outcome for r in first.results] == [
            r.outcome for r in second.results
        ]

    def test_tolerant_sweep_conceals_more(self, pristine):
        strict = run_corruption_sweep(pristine, n_cases=42, master_seed=2)
        tolerant = run_corruption_sweep(
            pristine, n_cases=42, master_seed=2, tolerate_errors=True
        )
        assert strict.ok and tolerant.ok

        def survived(report):
            return report.counts.get("decoded", 0) + report.counts.get(
                "concealed", 0
            )

        assert survived(tolerant) >= survived(strict)
        # The tolerant decoder distinguishes clean decodes from concealed
        # ones; over 42 corruptions at least one path must conceal.
        assert tolerant.counts.get("concealed", 0) > 0

    def test_failures_replay_from_seed_and_mutation(self, pristine, monkeypatch):
        from repro.codec import decoder as decoder_module

        original = decoder_module.VopDecoder.decode_sequence

        def flaky(self, data, tolerate_errors=False):
            if len(data) < len(pristine):
                raise OSError("contract violation")
            return original(self, data, tolerate_errors=tolerate_errors)

        monkeypatch.setattr(decoder_module.VopDecoder, "decode_sequence", flaky)
        report = run_corruption_sweep(pristine, n_cases=30, master_seed=4)
        assert report.failures  # the round-robin includes truncate cases
        for failure in report.failures:
            replayed = FuzzCase(
                seed=failure.case.seed, mutation=failure.case.mutation
            ).apply(pristine)
            assert len(replayed) < len(pristine)


@pytest.mark.slow
@pytest.mark.fuzz
class TestAcceptanceSweep:
    """The issue's acceptance criterion: 500 seeded cases, zero uncaught
    exceptions and zero hangs, in strict and tolerant modes."""

    @pytest.mark.parametrize("tolerate_errors", [False, True])
    def test_500_case_sweep_clean(self, pristine, tolerate_errors):
        report = run_corruption_sweep(
            pristine,
            n_cases=500,
            master_seed=0,
            tolerate_errors=tolerate_errors,
        )
        assert len(report.results) == 500
        assert report.ok, report.summary()


class TestErrorTyping:
    def test_rejection_detail_names_error_class(self):
        result = decode_case(b"\x00", _Crafted(b"\x00" * 64))
        assert result.outcome == "rejected"
        try:
            from repro.codec import VopDecoder

            VopDecoder().decode_sequence(b"\x00" * 64)
        except MalformedStreamError as error:
            assert type(error).__name__ == result.detail
