"""The fault injector itself: determinism, replayability, coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import CodecConfig, VopEncoder
from repro.conformance.fuzzer import MUTATIONS, BitstreamFuzzer, FuzzCase
from repro.video.synthesis import SceneSpec, SyntheticScene


@pytest.fixture(scope="module")
def pristine() -> bytes:
    scene = SyntheticScene(SceneSpec.default(48, 32))
    frames = [scene.frame(index) for index in range(3)]
    config = CodecConfig(48, 32, qp=10, gop_size=3, m_distance=1)
    return VopEncoder(config).encode_sequence(frames).data


class TestFuzzCase:
    def test_apply_is_pure_and_deterministic(self, pristine):
        case = FuzzCase(seed=1234, mutation="burst")
        first = case.apply(pristine)
        second = case.apply(pristine)
        assert first == second
        assert first != pristine

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_every_mutation_changes_or_shortens(self, pristine, mutation):
        for seed in range(20):
            corrupted = FuzzCase(seed=seed, mutation=mutation).apply(pristine)
            assert corrupted != pristine

    def test_distinct_seeds_give_distinct_corruptions(self, pristine):
        outputs = {
            FuzzCase(seed=seed, mutation="bitflip").apply(pristine)
            for seed in range(32)
        }
        assert len(outputs) > 16  # collisions are possible, sameness is not

    def test_unknown_mutation_rejected(self, pristine):
        with pytest.raises(ValueError):
            FuzzCase(seed=0, mutation="gamma-ray").apply(pristine)

    def test_empty_input_passes_through(self):
        assert FuzzCase(seed=0, mutation="bitflip").apply(b"") == b""

    def test_truncate_never_grows(self, pristine):
        for seed in range(20):
            corrupted = FuzzCase(seed=seed, mutation="truncate").apply(pristine)
            assert len(corrupted) < len(pristine)


class TestBitstreamFuzzer:
    def test_case_sequence_is_deterministic(self):
        first = BitstreamFuzzer(master_seed=7).cases(50)
        second = BitstreamFuzzer(master_seed=7).cases(50)
        assert first == second

    def test_master_seed_changes_sequence(self):
        assert BitstreamFuzzer(0).cases(20) != BitstreamFuzzer(1).cases(20)

    def test_round_robin_covers_taxonomy(self):
        cases = BitstreamFuzzer(0).cases(len(MUTATIONS) * 3)
        counts = {mutation: 0 for mutation in MUTATIONS}
        for case in cases:
            counts[case.mutation] += 1
        assert all(count == 3 for count in counts.values())

    def test_prefix_stability(self):
        """cases(n) is a prefix of cases(m) for n < m: a failing case's
        index never shifts when the sweep is enlarged."""
        fuzzer = BitstreamFuzzer(3)
        assert fuzzer.cases(80)[:30] == fuzzer.cases(30)

    def test_mutation_subset(self):
        cases = BitstreamFuzzer(0, mutations=("truncate",)).cases(10)
        assert all(case.mutation == "truncate" for case in cases)

    def test_rejects_bad_taxonomy(self):
        with pytest.raises(ValueError):
            BitstreamFuzzer(0, mutations=("cosmic",))
        with pytest.raises(ValueError):
            BitstreamFuzzer(0, mutations=())

    def test_corpus_pairs_cases_with_corruptions(self, pristine):
        corpus = BitstreamFuzzer(0).corpus(pristine, 14)
        assert len(corpus) == 14
        for case, corrupted in corpus:
            assert case.apply(pristine) == corrupted
