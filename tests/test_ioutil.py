"""Atomic writes: publish-or-nothing semantics, with and without chaos."""

from __future__ import annotations

import pytest

from repro.core.runner.chaos import POINT_MANIFEST_CELL, ChaosInjector, PROFILES
from repro.ioutil import atomic_write, sha256_hex


class TestSha256Hex:
    def test_stable_known_value(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_str_encodes_utf8(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write(target, "café\n")
        assert target.read_bytes() == "café\n".encode("utf-8")

    def test_overwrites_previous_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write(target, "old")
        atomic_write(target, "new")
        assert target.read_text() == "new"

    def test_creates_missing_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.txt"
        atomic_write(target, "x")
        assert target.read_text() == "x"

    def test_no_tmp_files_left_behind(self, tmp_path):
        atomic_write(tmp_path / "a.txt", "x")
        atomic_write(tmp_path / "a.txt", "y")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]


class TestChaosIntegration:
    def _key_for(self, injector, fault):
        for i in range(2000):
            if injector.fault_at(POINT_MANIFEST_CELL, f"k{i}") == fault:
                return f"k{i}"
        raise AssertionError(f"no {fault} draw found")

    def test_injected_io_error_leaves_no_trace(self, tmp_path, monkeypatch):
        injector = ChaosInjector(5, PROFILES["io"])
        key = self._key_for(injector, "io_error")
        monkeypatch.setenv("REPRO_CHAOS", "5:io")
        target = tmp_path / "artifact.bin"
        with pytest.raises(OSError, match="chaos"):
            atomic_write(
                target, b"data", chaos_point=POINT_MANIFEST_CELL,
                chaos_key=key,
            )
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no stray .tmp files

    def test_injected_torn_write_is_digest_detectable(
        self, tmp_path, monkeypatch
    ):
        injector = ChaosInjector(5, PROFILES["io"])
        key = self._key_for(injector, "torn_write")
        monkeypatch.setenv("REPRO_CHAOS", "5:io")
        target = tmp_path / "artifact.bin"
        data = b"intended content" * 8
        atomic_write(
            target, data, chaos_point=POINT_MANIFEST_CELL, chaos_key=key
        )
        published = target.read_bytes()
        assert published != data
        # The caller's defense: digests computed from in-memory bytes.
        assert sha256_hex(published) != sha256_hex(data)

    def test_unarmed_chaos_point_is_a_no_op(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        target = tmp_path / "artifact.bin"
        atomic_write(
            target, b"data", chaos_point=POINT_MANIFEST_CELL, chaos_key="k"
        )
        assert target.read_bytes() == b"data"
