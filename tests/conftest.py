"""Shared fixtures and collection hooks for the whole suite.

Two jobs:

- every test gets a ``tier1`` marker unless it opted into ``slow`` or
  ``fuzz``, so ``-m tier1`` / ``-m "not slow"`` select the commit gate
  without hand-tagging hundreds of tests;
- randomized tests draw from the shared ``rng`` fixture, seeded from a
  stable hash of the test's node id.  The stream is deterministic
  run-to-run and machine-to-machine, distinct per test (and per
  parametrized case), and independent of test execution order.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    for item in items:
        if not any(
            item.get_closest_marker(name) for name in ("slow", "fuzz", "tier1")
        ):
            item.add_marker(pytest.mark.tier1)


def _node_seed(nodeid: str) -> int:
    digest = hashlib.sha256(nodeid.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Deterministic per-test random generator (seeded from the node id)."""
    return np.random.default_rng(_node_seed(request.node.nodeid))
