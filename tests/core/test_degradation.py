"""Graceful degradation of the study pipeline under cell failures.

Covers the recovery ladder the hardened pipeline promises: a corrupt
trace-cache entry is evicted and re-recorded, a failing cell is retried
once, and a cell that fails its retry degrades the table to a partial
artifact instead of aborting the run.
"""

from __future__ import annotations

import pytest

from repro.core import study as study_module
from repro.core.experiments import (
    RESOLUTIONS,
    ExperimentScale,
    StudyRunner,
    _metric_table,
)
from repro.core.machines import SGI_O2
from repro.core.study import (
    StudyCellError,
    Workload,
    characterize_encode,
)
from repro.trace.persistence import TraceCacheStore, trace_fingerprint


def tiny_workload(name: str = "cell") -> Workload:
    return Workload(
        name=name, width=32, height=32, n_vos=1, n_layers=1, n_frames=2
    )


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    root = tmp_path / "trace-cache"
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(root))
    return TraceCacheStore(root)


class TestCacheRecovery:
    def test_cache_hit_reproduces_fresh_counters(self, cache_env):
        workload = tiny_workload()
        fresh = characterize_encode(workload, (SGI_O2,))
        cached = characterize_encode(workload, (SGI_O2,))
        key = trace_fingerprint(workload, "encode", None)
        assert cache_env.load(key) is not None
        assert (
            cached.raw_counters[SGI_O2.label].graduated_loads
            == fresh.raw_counters[SGI_O2.label].graduated_loads
        )

    def test_tampered_entry_is_recovered_from(self, cache_env):
        workload = tiny_workload()
        fresh = characterize_encode(workload, (SGI_O2,))
        key = trace_fingerprint(workload, "encode", None)
        trace = cache_env.entry_path(key) / "trace.npz"
        trace.write_bytes(b"\x00" * 100)

        recovered = characterize_encode(workload, (SGI_O2,))
        assert (
            recovered.raw_counters[SGI_O2.label].graduated_loads
            == fresh.raw_counters[SGI_O2.label].graduated_loads
        )
        # The entry was evicted and rewritten with a loadable recording.
        assert cache_env.load(key) is not None

    def test_cached_entry_failing_replay_is_rerecorded(
        self, cache_env, monkeypatch
    ):
        """An entry that loads but blows up during collection is evicted
        and the cell re-recorded -- one bad entry never kills a cell."""
        workload = tiny_workload()
        characterize_encode(workload, (SGI_O2,))

        original_collect = study_module._collect
        calls = {"n": 0}

        def collect_failing_once(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("corrupt batches slipped past the digest")
            return original_collect(*args, **kwargs)

        monkeypatch.setattr(study_module, "_collect", collect_failing_once)
        result = characterize_encode(workload, (SGI_O2,))
        assert calls["n"] == 2
        assert result.raw_counters[SGI_O2.label].graduated_loads > 0

    def test_fresh_recording_failure_propagates(self, cache_env, monkeypatch):
        """Only cached recordings get the evict-and-retry treatment; a
        deterministic failure of a fresh recording surfaces immediately."""
        monkeypatch.setattr(
            study_module,
            "_collect",
            lambda *args, **kwargs: (_ for _ in ()).throw(ValueError("boom")),
        )
        with pytest.raises(ValueError, match="boom"):
            characterize_encode(tiny_workload("fresh-fail"), (SGI_O2,))


class TestCellRetry:
    def test_transient_failure_is_retried(self):
        runner = StudyRunner(ExperimentScale("quick", 2, 0.5))
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient")
            return "result"

        assert runner._run_cell(tiny_workload(), "encode", flaky) == "result"
        assert attempts["n"] == 2

    def test_persistent_failure_becomes_study_cell_error(self):
        runner = StudyRunner(ExperimentScale("quick", 2, 0.5))
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise ValueError("deterministic bug")

        with pytest.raises(StudyCellError) as excinfo:
            runner._run_cell(tiny_workload("bad"), "encode", broken)
        assert attempts["n"] == 2
        assert isinstance(excinfo.value.error, ValueError)
        assert excinfo.value.direction == "encode"
        assert "bad" in str(excinfo.value)


class TestPartialTables:
    def test_failed_cell_yields_partial_artifact(self):
        """A table with one dead cell renders the live cells plus a
        bracketed failure note, and flags itself via ``failures``."""
        good = StudyRunner(ExperimentScale("quick", 2, 0.5))
        good_label, good_width, good_height = RESOLUTIONS[0]
        dead_label = RESOLUTIONS[1][0]
        reference = good.encode(32, 32)

        class OneDeadCell:
            def run(self, direction, width, height, n_vos, n_layers):
                if width == good_width:
                    return reference
                raise StudyCellError(
                    tiny_workload(dead_label),
                    direction,
                    ValueError("cell exploded"),
                )

        result = _metric_table(
            OneDeadCell(), "encode", 1, 1, {}, "Table2 -- encode"
        )
        assert result.failures
        assert dead_label in result.failures
        assert "cell failed after retry" in result.text
        assert "cell exploded" in result.text
        assert good_label in result.measured
        assert dead_label not in result.measured
