"""Tests for report retiming (ablation support) and platform specs."""

import pytest

from repro.core.machines import SGI_O2, SGI_ONYX2
from repro.core.metrics import retime
from repro.core.platforms import EXTENDED_PLATFORMS, ITANIUM, PENTIUM_III, POWER4
from repro.memsim.hierarchy import HierarchyCounters
from repro.memsim.timing import Clock


def counters():
    made = HierarchyCounters(
        graduated_loads=1_000_000,
        graduated_stores=200_000,
        l1_hits=1_195_000,
        l1_misses=5_000,
        l2_hits=3_000,
        l2_misses=2_000,
        alu_ops=800_000,
    )
    made.clock = Clock(compute_cycles=1.0, l1_stall_cycles=0.0, dram_stall_cycles=0.0)
    return made


class TestRetime:
    def test_cache_ratios_unchanged(self):
        report = retime(counters(), SGI_O2, dram_latency_ns=5000)
        assert report.l1_miss_rate == pytest.approx(5_000 / 1_200_000)
        assert report.l2_miss_rate == pytest.approx(0.4)

    def test_dram_time_monotone_in_latency(self):
        slow = retime(counters(), SGI_O2, dram_latency_ns=5000).dram_time
        fast = retime(counters(), SGI_O2, dram_latency_ns=100).dram_time
        assert slow > fast

    def test_alu_scale_shrinks_time_and_grows_bandwidth(self):
        scalar = retime(counters(), SGI_ONYX2)
        vector = retime(counters(), SGI_ONYX2, alu_scale=0.125)
        assert vector.seconds < scalar.seconds
        assert vector.l1_l2_bw_mb_s > scalar.l1_l2_bw_mb_s

    def test_default_latency_matches_machine_dram(self):
        default = retime(counters(), SGI_O2)
        explicit = retime(counters(), SGI_O2, dram_latency_ns=300.0)
        assert default.dram_time == pytest.approx(explicit.dram_time)


class TestPlatformSpecs:
    def test_all_platforms_build(self):
        for platform in EXTENDED_PLATFORMS:
            stack = platform.build()
            assert stack.name == platform.name
            assert len(stack.caches) == len(platform.geometries)

    def test_level_counts(self):
        assert len(PENTIUM_III.geometries) == 2
        assert len(ITANIUM.geometries) == 3
        assert len(POWER4.geometries) == 3

    def test_capacities_increase_down_the_stack(self):
        for platform in EXTENDED_PLATFORMS:
            sizes = [geometry.size_bytes for geometry in platform.geometries]
            assert sizes == sorted(sizes)

    def test_power4_has_big_lines(self):
        assert POWER4.geometries[0].line_bytes == 128
        assert POWER4.geometries[2].line_bytes == 512
