"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "fig2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table1_runs(self, capsys):
        assert main(["table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Platform Highlights" in out

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])
