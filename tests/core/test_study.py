"""Integration tests for workload construction and characterization runs.

Runs at miniature resolutions so the full instrumented pipeline (codec +
recorder + three simulated hierarchies) executes in well under a second.
"""

import numpy as np
import pytest

from repro.core.machines import STUDY_MACHINES
from repro.core.study import (
    Workload,
    _bounding_box,
    build_workload_inputs,
    characterize_decode,
    characterize_encode,
)
from repro.trace.recorder import BandSampling

TINY = dict(width=96, height=64, n_frames=4)


def tiny_workload(n_vos=1, n_layers=1, **overrides):
    params = dict(TINY)
    params.update(overrides)
    return Workload(
        name="tiny", n_vos=n_vos, n_layers=n_layers, **params
    )


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_workload(n_vos=2)
        with pytest.raises(ValueError):
            tiny_workload(n_layers=3)

    def test_label(self):
        assert "96x64" in tiny_workload().label


class TestBoundingBox:
    def test_aligned_box(self):
        mask = np.zeros((64, 96), dtype=np.uint8)
        mask[20:30, 35:50] = 255
        y0, x0, h, w = _bounding_box([mask], 16)
        assert (y0 % 16, x0 % 16, h % 16, w % 16) == (0, 0, 0, 0)
        assert y0 <= 20 and y0 + h >= 30
        assert x0 <= 35 and x0 + w >= 50

    def test_union_over_frames(self):
        a = np.zeros((64, 96), dtype=np.uint8)
        a[0:8, 0:8] = 255
        b = np.zeros((64, 96), dtype=np.uint8)
        b[56:64, 88:96] = 255
        y0, x0, h, w = _bounding_box([a, b], 16)
        assert (y0, x0) == (0, 0)
        assert (h, w) == (64, 96)

    def test_empty_masks(self):
        mask = np.zeros((64, 96), dtype=np.uint8)
        y0, x0, h, w = _bounding_box([mask], 16)
        assert (h, w) == (16, 16)

    def test_box_clamped_to_frame(self):
        mask = np.zeros((64, 96), dtype=np.uint8)
        mask[60:64, 90:96] = 255
        y0, x0, h, w = _bounding_box([mask], 16)
        assert y0 + h <= 64
        assert x0 + w <= 96


class TestWorkloadInputs:
    def test_single_vo(self):
        inputs = build_workload_inputs(tiny_workload())
        assert len(inputs) == 1
        assert inputs[0].config.arbitrary_shape is False
        assert len(inputs[0].frames) == 4

    def test_three_vos(self):
        inputs = build_workload_inputs(tiny_workload(n_vos=3))
        assert len(inputs) == 3
        assert inputs[0].config.width == 96  # background is full frame
        assert inputs[1].config.arbitrary_shape
        assert inputs[1].config.width <= 96
        assert inputs[1].masks is not None
        # Cropped frames and masks agree in size.
        assert inputs[1].frames[0].y.shape == inputs[1].masks[0].shape

    def test_single_vo_is_subset_of_multi(self):
        """Paper: 'the single-object input becom[es] a subset of the
        multiple-object input' -- VO 0 must be the same composited frames."""
        single = build_workload_inputs(tiny_workload(n_vos=1))
        multi = build_workload_inputs(tiny_workload(n_vos=3))
        # Same scene spec (two objects) is used for both when n_vos is 3?
        # No: 1-VO scenes use one object; the invariant we keep is that the
        # multi-VO background equals the multi-VO composited frame.
        assert multi[0].config.width == single[0].config.width


class TestCharacterization:
    def test_encode_produces_reports_per_machine(self):
        result = characterize_encode(tiny_workload())
        assert set(result.reports) == {m.label for m in STUDY_MACHINES}
        report = result.reports["R12K 1MB"]
        assert 0 < report.l1_miss_rate < 0.2
        assert report.seconds > 0
        assert result.footprint_bytes > 0

    def test_decode_roundtrip_from_encode_streams(self):
        enc = characterize_encode(tiny_workload())
        dec = characterize_decode(tiny_workload(), encoded=enc.encoded)
        assert dec.direction == "decode"
        assert "vop_decode" in dec.phase_reports

    def test_phases_present(self):
        result = characterize_encode(tiny_workload())
        assert "vop_encode" in result.phase_reports
        assert "other" in result.phase_reports

    def test_multi_vo_characterization(self):
        result = characterize_encode(tiny_workload(n_vos=3))
        assert len(result.encoded) == 3

    def test_two_layer_characterization(self):
        enc = characterize_encode(tiny_workload(n_vos=1, n_layers=2))
        dec = characterize_decode(tiny_workload(n_vos=1, n_layers=2), encoded=enc.encoded)
        assert dec.reports["R12K 8MB"].graduated_loads > 0

    def test_sampling_scale_factor(self):
        sampling = BandSampling(row_fraction=0.5)
        result = characterize_encode(tiny_workload(), sampling=sampling)
        assert result.scale == pytest.approx(2.0)

    def test_sampled_ratios_close_to_unsampled(self):
        """Band sampling must leave the paper's ratio metrics close to the
        full-trace values (the DESIGN.md sampling-soundness claim)."""
        full = characterize_encode(tiny_workload(height=128))
        half = characterize_encode(
            tiny_workload(height=128), sampling=BandSampling(row_fraction=0.5)
        )
        full_report = full.reports["R12K 1MB"]
        half_report = half.reports["R12K 1MB"]
        # At this miniature scale the per-VOP work (always fully traced)
        # is a large share of the total, so the tolerance is generous; at
        # the experiment resolutions the row-sampled skew is far smaller.
        assert half_report.l1_miss_rate == pytest.approx(
            full_report.l1_miss_rate, rel=0.7
        )
        assert half_report.l2_miss_rate == pytest.approx(
            full_report.l2_miss_rate, rel=0.7
        )

    def test_deterministic(self):
        a = characterize_encode(tiny_workload())
        b = characterize_encode(tiny_workload())
        ra = a.reports["R10K 2MB"]
        rb = b.reports["R10K 2MB"]
        assert ra.l1_miss_rate == rb.l1_miss_rate
        assert ra.seconds == rb.seconds

    def test_qualitative_l2_ordering(self):
        """Bigger L2 -> lower L2 miss rate, the paper's basic sanity check."""
        result = characterize_decode(tiny_workload(width=176, height=144, n_frames=4))
        rates = [result.reports[m.label].l2_miss_rate for m in STUDY_MACHINES]
        assert rates[0] >= rates[2]
