"""Tests for machine specs, metric formulas, and the perfex facade."""

import numpy as np
import pytest

from repro.core.counters import PerfexSession
from repro.core.machines import (
    BUS,
    L1_GEOMETRY,
    SGI_O2,
    SGI_ONYX,
    SGI_ONYX2,
    STUDY_MACHINES,
    machine_by_l2_mb,
)
from repro.core.metrics import compute_report
from repro.memsim.events import KIND_READ, AccessBatch
from repro.memsim.hierarchy import HierarchyCounters
from repro.memsim.timing import Clock


class TestMachines:
    def test_table1_l2_sizes(self):
        assert [m.l2.size_bytes >> 20 for m in STUDY_MACHINES] == [1, 2, 8]

    def test_shared_l1(self):
        assert L1_GEOMETRY.size_bytes == 32 << 10
        assert L1_GEOMETRY.line_bytes == 32
        assert L1_GEOMETRY.ways == 2

    def test_bus_matches_table1(self):
        assert BUS.width_bits == 64
        assert BUS.clock_mhz == 133.0
        assert BUS.sustained_mb_s == 680.0

    def test_r10k_lacks_prefetch_hit_counter(self):
        assert not SGI_ONYX.counts_prefetch_hits
        assert SGI_O2.counts_prefetch_hits
        assert SGI_ONYX2.counts_prefetch_hits

    def test_labels(self):
        assert SGI_O2.label == "R12K 1MB"
        assert SGI_ONYX.label == "R10K 2MB"
        assert SGI_ONYX2.label == "R12K 8MB"

    def test_lookup_by_l2(self):
        assert machine_by_l2_mb(2) is SGI_ONYX
        with pytest.raises(KeyError):
            machine_by_l2_mb(4)

    def test_build_hierarchy_is_fresh(self):
        first = SGI_O2.build_hierarchy()
        second = SGI_O2.build_hierarchy()
        first.process(AccessBatch(KIND_READ, np.array([0]), np.array([1])))
        assert second.total.l1_misses == 0


class TestMetricFormulas:
    def _counters(self):
        counters = HierarchyCounters(
            graduated_loads=900_000,
            graduated_stores=100_000,
            l1_hits=999_000,
            l1_misses=1_000,
            l1_writebacks=200,
            l2_hits=640,
            l2_misses=360,
            l2_writebacks=100,
            prefetch_issued=100,
            prefetch_l1_hits=55,
            prefetch_l1_misses=45,
        )
        counters.clock = Clock(
            compute_cycles=1_000_000.0, l1_stall_cycles=5_000.0, dram_stall_cycles=20_000.0
        )
        return counters

    def test_paper_formulas(self):
        report = compute_report(self._counters(), SGI_O2)
        assert report.l1_miss_rate == pytest.approx(1_000 / 1_000_000)
        assert report.l1_line_reuse == pytest.approx(999_000 / 1_000)
        assert report.l2_miss_rate == pytest.approx(0.36)
        assert report.l2_line_reuse == pytest.approx(640 / 360)
        total = 1_025_000.0
        assert report.l1_miss_time == pytest.approx(5_000 / total)
        assert report.dram_time == pytest.approx(20_000 / total)

    def test_bandwidths(self):
        report = compute_report(self._counters(), SGI_O2)
        seconds = 1_025_000.0 / 300e6
        expected_l1_l2 = (1_000 + 45 + 200) * 32 / 1e6 / seconds
        assert report.l1_l2_bw_mb_s == pytest.approx(expected_l1_l2)
        expected_l2_dram = (360 + 100) * 128 / 1e6 / seconds
        # prefetch L2 misses are zero here
        assert report.l2_dram_bw_mb_s == pytest.approx(expected_l2_dram)
        assert report.bus_utilization == pytest.approx(expected_l2_dram / 680.0)

    def test_prefetch_metric_respects_machine_capability(self):
        counters = self._counters()
        assert compute_report(counters, SGI_O2).prefetch_l1_miss == pytest.approx(0.45)
        assert compute_report(counters, SGI_ONYX).prefetch_l1_miss is None

    def test_scaling_invariance_of_ratios(self):
        counters = self._counters()
        base = compute_report(counters, SGI_O2)
        scaled = compute_report(counters, SGI_O2, scale=3.0)
        assert scaled.l1_miss_rate == pytest.approx(base.l1_miss_rate, rel=1e-3)
        assert scaled.l2_miss_rate == pytest.approx(base.l2_miss_rate, rel=1e-3)
        assert scaled.dram_time == pytest.approx(base.dram_time, rel=1e-3)
        assert scaled.l1_l2_bw_mb_s == pytest.approx(base.l1_l2_bw_mb_s, rel=1e-2)

    def test_as_rows_formatting(self):
        rows = dict(compute_report(self._counters(), SGI_ONYX).as_rows())
        assert rows["prefetch L1C miss"] == "n/a"
        assert rows["L1C miss rate"] == "0.10%"


class TestPerfexSession:
    def _session_with_traffic(self):
        session = PerfexSession.start(SGI_O2)
        lines = np.arange(100)
        session.hierarchy.process(
            AccessBatch(KIND_READ, lines, np.ones_like(lines), phase="vop_decode")
        )
        return session

    def test_read_events(self):
        session = self._session_with_traffic()
        assert session.read("graduated_loads") == 100
        assert session.read("primary_data_cache_misses") == 100

    def test_unknown_event_rejected(self):
        with pytest.raises(KeyError):
            self._session_with_traffic().read("bogus_event")

    def test_phase_scoping(self):
        session = self._session_with_traffic()
        assert session.phases() == ["vop_decode"]
        assert session.read("graduated_loads", phase="vop_decode") == 100
        with pytest.raises(KeyError):
            session.read("graduated_loads", phase="nope")

    def test_report(self):
        report = self._session_with_traffic().report()
        assert report.machine == "R12K 1MB"
        assert report.l1_miss_rate == 1.0
