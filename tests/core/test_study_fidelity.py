"""Counter-fidelity tests for the record-once/replay-many pipeline.

The acceptance bar for the performance work: for real study cells (the
Table 2 encode and Table 5 decode workload shapes, at test scale) every
perfex counter must be **equal** -- not approximately equal -- across

- the fast (array + kernel) engine and the reference list engine,
- a live recording and a replay of its on-disk cached trace, and
- sequential and process-pool replay.
"""

import pytest

from repro.core.machines import STUDY_MACHINES
from repro.core.study import (
    Workload,
    characterize_decode,
    characterize_encode,
    default_jobs,
    replay_into_machines,
)
from repro.memsim.fastpath import kernel_available

#: Table 2's cell shape (encode, 1 VO, 1 layer) and Table 5's (decode,
#: 3 VOs, 1 layer), shrunk to test scale.
TABLE2_CELL = Workload(name="t2", width=96, height=64, n_vos=1, n_layers=1, n_frames=3)
TABLE5_CELL = Workload(name="t5", width=96, height=64, n_vos=3, n_layers=1, n_frames=3)

COUNTER_FIELDS = (
    "graduated_loads", "graduated_stores", "l1_hits", "l1_misses",
    "l1_writebacks", "l2_hits", "l2_misses", "l2_writebacks",
    "prefetch_issued", "prefetch_l1_hits", "prefetch_l1_misses",
    "prefetch_l2_misses", "tlb_misses", "alu_ops",
)


def assert_results_identical(a, b):
    assert set(a.raw_counters) == set(b.raw_counters)
    for machine, counters in a.raw_counters.items():
        other = b.raw_counters[machine]
        for field in COUNTER_FIELDS:
            assert getattr(counters, field) == getattr(other, field), (
                machine, field,
            )
        assert counters.clock == other.clock, machine
    assert a.scale == b.scale
    assert a.footprint_bytes == b.footprint_bytes


def run_cell(workload, direction, monkeypatch, engine, **kwargs):
    monkeypatch.setenv("REPRO_ENGINE", engine)
    if direction == "encode":
        return characterize_encode(workload, **kwargs)
    return characterize_decode(workload, **kwargs)


@pytest.mark.skipif(not kernel_available(), reason="no C compiler for fast engine")
class TestEngineFidelity:
    @pytest.mark.parametrize(
        "workload,direction",
        [(TABLE2_CELL, "encode"), (TABLE5_CELL, "decode")],
        ids=["table2-encode-1vo1l", "table5-decode-3vo1l"],
    )
    def test_fast_engine_matches_reference(self, workload, direction, monkeypatch):
        fast = run_cell(workload, direction, monkeypatch, "fast")
        reference = run_cell(workload, direction, monkeypatch, "reference")
        assert_results_identical(fast, reference)


class TestCachedReplayFidelity:
    @pytest.mark.parametrize(
        "workload,direction",
        [(TABLE2_CELL, "encode"), (TABLE5_CELL, "decode")],
        ids=["table2-encode-1vo1l", "table5-decode-3vo1l"],
    )
    def test_cached_replay_matches_live(self, workload, direction, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        live = (characterize_encode if direction == "encode" else characterize_decode)(
            workload
        )
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        run = characterize_encode if direction == "encode" else characterize_decode
        recorded = run(workload)  # populates the cache
        replayed = run(workload)  # must hit it
        assert list(tmp_path.iterdir()), "recording was not persisted"
        assert_results_identical(live, recorded)
        assert_results_identical(live, replayed)


class TestParallelReplayFidelity:
    def test_parallel_equals_sequential(self):
        result = characterize_encode(TABLE2_CELL)
        parallel = characterize_encode(TABLE2_CELL, jobs=3)
        assert_results_identical(result, parallel)

    def test_replay_preserves_machine_order(self):
        replayed = replay_into_machines([], STUDY_MACHINES, jobs=2)
        assert list(replayed) == [machine.label for machine in STUDY_MACHINES]

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()
