"""The deterministic chaos injector: schedules, profiles, parsing."""

from __future__ import annotations

import pytest

from repro.core.runner.chaos import (
    CHAOS_ENV,
    FAULTS,
    POINT_MANIFEST_CELL,
    POINT_TRACE_STORE,
    POINT_WORKER_CELL,
    PROFILES,
    ChaosError,
    ChaosInjector,
    chaos_from_env,
    parse_chaos_spec,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = ChaosInjector(7, PROFILES["heavy"])
        second = ChaosInjector(7, PROFILES["heavy"])
        keys = [f"cell-{i}/a{a}" for i in range(40) for a in (1, 2, 3)]
        schedule_a = [first.fault_at(POINT_WORKER_CELL, key) for key in keys]
        schedule_b = [second.fault_at(POINT_WORKER_CELL, key) for key in keys]
        assert schedule_a == schedule_b
        assert any(fault is not None for fault in schedule_a)

    def test_different_seeds_differ(self):
        keys = [f"cell-{i}/a1" for i in range(60)]
        a = [
            ChaosInjector(1, PROFILES["heavy"]).fault_at(POINT_WORKER_CELL, k)
            for k in keys
        ]
        b = [
            ChaosInjector(2, PROFILES["heavy"]).fault_at(POINT_WORKER_CELL, k)
            for k in keys
        ]
        assert a != b

    def test_attempt_key_gives_fresh_draws(self):
        # The whole retry ladder depends on attempt 2 drawing a different
        # outcome than attempt 1 for the same cell.
        injector = ChaosInjector(0, PROFILES["kills"])
        outcomes = {
            injector.fault_at(POINT_WORKER_CELL, f"cell-7/a{a}")
            for a in range(1, 30)
        }
        assert outcomes == {None, "kill"}

    def test_faults_only_at_profiled_points(self):
        injector = ChaosInjector(3, PROFILES["kills"])
        for i in range(50):
            assert injector.fault_at(POINT_MANIFEST_CELL, f"k{i}") is None

    def test_known_faults_only(self):
        injector = ChaosInjector(11, PROFILES["heavy"])
        for i in range(100):
            fault = injector.fault_at(POINT_WORKER_CELL, f"cell/{i}")
            assert fault is None or fault in FAULTS


class TestMangleBytes:
    def _torn_key(self, injector, point) -> str:
        for i in range(1000):
            if injector.fault_at(point, f"k{i}") == "torn_write":
                return f"k{i}"
        raise AssertionError("no torn_write draw in 1000 keys")

    def test_scheduled_tear_corrupts_deterministically(self):
        injector = ChaosInjector(5, PROFILES["io"])
        key = self._torn_key(injector, POINT_MANIFEST_CELL)
        data = b"x" * 256
        mangled = injector.mangle_bytes(POINT_MANIFEST_CELL, key, data)
        assert mangled != data
        assert mangled == injector.mangle_bytes(POINT_MANIFEST_CELL, key, data)

    def test_unscheduled_data_passes_through(self):
        injector = ChaosInjector(5, PROFILES["io"])
        for i in range(200):
            key = f"k{i}"
            if injector.fault_at(POINT_MANIFEST_CELL, key) is None:
                data = b"payload"
                assert (
                    injector.mangle_bytes(POINT_MANIFEST_CELL, key, data)
                    == data
                )
                return
        raise AssertionError("no clean draw found")

    def test_empty_data_never_mangled(self):
        injector = ChaosInjector(5, PROFILES["io"])
        key = self._torn_key(injector, POINT_MANIFEST_CELL)
        assert injector.mangle_bytes(POINT_MANIFEST_CELL, key, b"") == b""


class TestIoError:
    def test_scheduled_io_error_raises_oserror_subtype(self):
        injector = ChaosInjector(5, PROFILES["io"])
        for i in range(1000):
            key = f"k{i}"
            if injector.fault_at(POINT_TRACE_STORE, key) == "io_error":
                with pytest.raises(ChaosError) as excinfo:
                    injector.maybe_io_error(POINT_TRACE_STORE, key)
                assert isinstance(excinfo.value, OSError)
                assert "seed=5" in str(excinfo.value)
                return
        raise AssertionError("no io_error draw in 1000 keys")


class TestSpecParsing:
    def test_seed_and_profile(self):
        injector = parse_chaos_spec("42:heavy")
        assert injector.seed == 42
        assert injector.profile.name == "heavy"

    def test_default_profile_is_light(self):
        assert parse_chaos_spec("9").profile.name == "light"

    def test_empty_and_none_disable(self):
        assert parse_chaos_spec("") is None
        assert parse_chaos_spec("5:none") is None

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="<seed>"):
            parse_chaos_spec("not-a-seed:kills")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            parse_chaos_spec("3:tornado")

    def test_env_arming_and_cache(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "13:kills")
        injector = chaos_from_env()
        assert injector is not None and injector.seed == 13
        assert chaos_from_env() is injector  # cached for the same spec
        monkeypatch.setenv(CHAOS_ENV, "14:kills")
        assert chaos_from_env().seed == 14
        monkeypatch.delenv(CHAOS_ENV)
        assert chaos_from_env() is None
