"""The write-ahead run manifest: commit protocol, verification, resume."""

from __future__ import annotations

import json

import pytest

from repro.core.runner.chaos import POINT_MANIFEST_CELL, ChaosInjector, PROFILES
from repro.core.runner.manifest import (
    ManifestError,
    RunManifest,
    list_runs,
    runs_root,
)

_ATTEMPTS = [{"index": 1, "outcome": "ok", "duration_s": 0.1}]


def _make(tmp_path, run_id="run-a", cells=("cell-1", "cell-2")):
    return RunManifest.create(
        tmp_path, run_id, grid="tables", scale="quick", cell_ids=list(cells)
    )


class TestRunsRoot:
    def test_explicit_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "/elsewhere")
        assert runs_root(tmp_path) == tmp_path

    def test_env_then_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "/from-env")
        assert str(runs_root()) == "/from-env"
        monkeypatch.delenv("REPRO_RUNS")
        assert str(runs_root()) == ".repro-runs"


class TestCreateAndLoad:
    def test_round_trip(self, tmp_path):
        _make(tmp_path)
        manifest = RunManifest.load(tmp_path, "run-a")
        meta = manifest.run_meta()
        assert meta["grid"] == "tables"
        assert meta["scale"] == "quick"
        assert meta["cells"] == ["cell-1", "cell-2"]
        assert manifest.statuses() == {
            "cell-1": "pending", "cell-2": "pending"
        }

    def test_create_refuses_to_clobber(self, tmp_path):
        _make(tmp_path)
        with pytest.raises(ManifestError, match="already exists"):
            _make(tmp_path)

    def test_load_missing_run_fails(self, tmp_path):
        with pytest.raises(ManifestError, match="unreadable"):
            RunManifest.load(tmp_path, "no-such-run")

    def test_torn_run_record_detected_by_self_digest(self, tmp_path):
        manifest = _make(tmp_path)
        body = json.loads(manifest.run_file.read_text())
        body["cells"][0] = "cell-X"  # a flipped byte in the cell list
        manifest.run_file.write_text(json.dumps(body))
        with pytest.raises(ManifestError, match="self-digest"):
            RunManifest.load(tmp_path, "run-a")


class TestCommitProtocol:
    def test_commit_then_verified_load(self, tmp_path):
        manifest = _make(tmp_path)
        payload = b"the cell result bytes"
        manifest.commit_cell("cell-1", payload, attempts=_ATTEMPTS)
        assert manifest.load_cell_payload("cell-1") == payload
        assert manifest.statuses()["cell-1"] == "done"
        record = manifest.cell_record("cell-1")
        assert record.attempts == _ATTEMPTS

    def test_uncommitted_cell_has_no_payload(self, tmp_path):
        manifest = _make(tmp_path)
        with pytest.raises(ManifestError, match="no committed result"):
            manifest.load_cell_payload("cell-1")

    def test_torn_payload_reports_pending_not_done(self, tmp_path):
        # The resume contract: a cell whose payload fails its digest must
        # re-execute, exactly as if it never committed.
        manifest = _make(tmp_path)
        manifest.commit_cell("cell-1", b"good bytes", attempts=_ATTEMPTS)
        (manifest.cells_dir / "cell-1.pkl").write_bytes(b"torn byt")
        with pytest.raises(ManifestError, match="digest mismatch"):
            manifest.load_cell_payload("cell-1")
        assert manifest.statuses()["cell-1"] == "pending"
        assert "cell-1" in manifest.incomplete_cells()

    def test_quarantine_records_history(self, tmp_path):
        manifest = _make(tmp_path)
        attempts = [
            {"index": 1, "outcome": "worker-death", "duration_s": 1.0,
             "error": "exited -9"},
            {"index": 2, "outcome": "timeout", "duration_s": 2.0,
             "error": "deadline"},
        ]
        manifest.quarantine_cell("cell-2", attempts)
        assert manifest.statuses()["cell-2"] == "quarantined"
        summary = manifest.failure_summary()
        assert "cell-2: quarantined" in summary
        assert "worker-death" in summary and "timeout" in summary

    def test_incomplete_cells_drive_resume(self, tmp_path):
        manifest = _make(tmp_path, cells=("a", "b", "c"))
        manifest.commit_cell("b", b"done", attempts=_ATTEMPTS)
        manifest.quarantine_cell("c", _ATTEMPTS)
        # Pending AND quarantined cells re-execute; done cells are skipped.
        assert manifest.incomplete_cells() == ["a", "c"]

    def test_commit_retries_through_transient_chaos(self, tmp_path, monkeypatch):
        # Find a cell name whose first write attempt draws a fault but
        # whose retries run clean -- commit must succeed and verify.
        injector = ChaosInjector(5, PROFILES["io"])

        def draws(cell_id):
            return [
                injector.fault_at(
                    POINT_MANIFEST_CELL, f"{cell_id}/{part}/t{attempt}"
                )
                for attempt in (1, 2, 3)
                for part in ("payload", "record")
            ]

        cell_id = next(
            f"cell-{i}" for i in range(5000)
            if draws(f"cell-{i}")[0] is not None
            and all(fault is None for fault in draws(f"cell-{i}")[2:])
        )
        manifest = RunManifest.create(
            tmp_path, "chaotic", grid="g", scale="s", cell_ids=[cell_id]
        )
        monkeypatch.setenv("REPRO_CHAOS", "5:io")
        manifest.commit_cell(cell_id, b"payload bytes", attempts=_ATTEMPTS)
        monkeypatch.delenv("REPRO_CHAOS")
        assert manifest.load_cell_payload(cell_id) == b"payload bytes"

    def test_commit_exhaustion_raises_not_lies(self, tmp_path, monkeypatch):
        # Every write attempt faulted: commit must raise, and the cell
        # must still read as pending -- never as done with bad bytes.
        injector = ChaosInjector(5, PROFILES["io"])

        def all_faulted(cell_id, tries):
            return all(
                injector.fault_at(
                    POINT_MANIFEST_CELL, f"{cell_id}/payload/t{attempt}"
                )
                is not None
                for attempt in range(1, tries + 1)
            )

        cell_id = next(
            f"cell-{i}" for i in range(100000) if all_faulted(f"cell-{i}", 2)
        )
        manifest = RunManifest.create(
            tmp_path, "doomed", grid="g", scale="s", cell_ids=[cell_id]
        )
        monkeypatch.setenv("REPRO_CHAOS", "5:io")
        with pytest.raises(ManifestError, match="failed to persist"):
            manifest.commit_cell(
                cell_id, b"payload", attempts=_ATTEMPTS, max_tries=2
            )
        monkeypatch.delenv("REPRO_CHAOS")
        assert manifest.statuses()[cell_id] == "pending"


class TestListRuns:
    def test_lists_and_sorts(self, tmp_path):
        _make(tmp_path, run_id="run-a")
        second = _make(tmp_path, run_id="run-b", cells=("x",))
        second.commit_cell("x", b"p", attempts=_ATTEMPTS)
        summaries = list_runs(tmp_path)
        assert {s["run_id"] for s in summaries} == {"run-a", "run-b"}
        by_id = {s["run_id"]: s for s in summaries}
        assert by_id["run-b"]["done"] == 1
        assert by_id["run-a"]["pending"] == 2

    def test_empty_root(self, tmp_path):
        assert list_runs(tmp_path / "nowhere") == []

    def test_unreadable_run_is_reported_not_fatal(self, tmp_path):
        manifest = _make(tmp_path)
        manifest.run_file.write_text("{ torn json")
        summaries = list_runs(tmp_path)
        assert summaries[0]["run_id"] == "run-a"
        assert summaries[0].get("unreadable") is True
