"""The orchestration layer: grids, resume, artifacts, telemetry, chaos.

The fast tests drive the real pool + manifest over a stubbed probe grid;
one integration test runs the genuine ``tiny`` grid end to end (the
32x32 cells cost ~0.1s each at ``quick`` scale) and proves the headline
contract: a chaos-killed run, resumed without chaos, produces payloads
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.experiments import EXPERIMENTS
from repro.core.runner import orchestrator as orch
from repro.core.runner.chaos import POINT_WORKER_CELL, ChaosInjector, PROFILES
from repro.core.runner.manifest import RunManifest
from repro.core.runner.orchestrator import (
    CellSpec,
    GRID_EXPERIMENTS,
    GRIDS,
    ManifestRunner,
    assemble_artifacts,
    cell_budget_from_env,
    run_chaos_sweep,
    run_study,
)
from repro.core.runner.supervisor import RetryPolicy, WorkerBudget
from repro.core.study import StudyCellError


class TestGrids:
    def test_tables_grid_covers_both_resolutions_and_directions(self):
        cells = GRIDS["tables"]
        assert len(cells) == 12
        assert {c.direction for c in cells} == {"encode", "decode"}
        assert {(c.n_vos, c.n_layers) for c in cells} == {
            (1, 1), (3, 1), (3, 2)
        }

    def test_full_grid_adds_the_huge_decode_point(self):
        extra = set(GRIDS["full"]) - set(GRIDS["tables"])
        assert len(extra) == 1
        assert next(iter(extra)).direction == "decode"

    def test_cell_ids_are_unique_per_grid(self):
        for cells in GRIDS.values():
            ids = [c.cell_id for c in cells]
            assert len(ids) == len(set(ids))

    def test_grid_experiments_are_registered(self):
        for experiment_ids in GRID_EXPERIMENTS.values():
            assert all(e in EXPERIMENTS for e in experiment_ids)


class TestCellBudget:
    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_BUDGET", raising=False)
        assert cell_budget_from_env() == 1800.0
        monkeypatch.setenv("REPRO_CELL_BUDGET", "42.5")
        assert cell_budget_from_env() == 42.5

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_BUDGET", "forever")
        with pytest.raises(ValueError, match="REPRO_CELL_BUDGET"):
            cell_budget_from_env()


def _probe_execute_cell(cell_fields: dict, scale_name: str) -> dict:
    """A deterministic, instant stand-in for the real characterization."""
    return {"cell": dict(cell_fields), "scale": scale_name, "token": 7919}


_PROBE_GRID = (
    CellSpec("encode", 8, 8, 1, 1),
    CellSpec("decode", 8, 8, 1, 1),
    CellSpec("encode", 8, 8, 3, 1),
)


@pytest.fixture
def probe_grid(monkeypatch):
    monkeypatch.setitem(GRIDS, "probe", _PROBE_GRID)
    monkeypatch.setitem(GRID_EXPERIMENTS, "probe", ())
    monkeypatch.setattr(orch, "execute_cell", _probe_execute_cell)
    return "probe"


class TestRunStudy:
    def test_fresh_run_commits_every_cell(self, tmp_path, probe_grid):
        outcome = run_study(
            grid=probe_grid, scale="quick", jobs=2, runs_dir=tmp_path,
            run_id="fresh",
        )
        assert outcome.complete and outcome.all_done
        assert not outcome.resumed and outcome.skipped_cells == []
        for cell in _PROBE_GRID:
            payload = pickle.loads(
                outcome.manifest.load_cell_payload(cell.cell_id)
            )
            assert payload["token"] == 7919
        totals = outcome.telemetry["totals"]
        assert totals["done"] == 3 and totals["attempts"] == 3
        assert (outcome.manifest.run_dir / "telemetry.json").exists()

    def test_resume_skips_completed_cells(self, tmp_path, probe_grid):
        run_study(
            grid=probe_grid, scale="quick", jobs=1, runs_dir=tmp_path,
            run_id="r",
        )
        before = {
            cell.cell_id: (tmp_path / "r" / "cells" / f"{cell.cell_id}.pkl"
                           ).read_bytes()
            for cell in _PROBE_GRID
        }
        resumed = run_study(runs_dir=tmp_path, run_id="r", resume=True)
        assert resumed.resumed
        assert sorted(resumed.skipped_cells) == sorted(
            cell.cell_id for cell in _PROBE_GRID
        )
        assert resumed.telemetry["totals"]["attempts"] == 0
        after = {
            cell_id: (tmp_path / "r" / "cells" / f"{cell_id}.pkl").read_bytes()
            for cell_id in before
        }
        assert after == before  # completed cells were not re-executed

    def test_resume_reexecutes_torn_cells(self, tmp_path, probe_grid):
        run_study(
            grid=probe_grid, scale="quick", jobs=1, runs_dir=tmp_path,
            run_id="torn",
        )
        victim = _PROBE_GRID[0].cell_id
        (tmp_path / "torn" / "cells" / f"{victim}.pkl").write_bytes(b"torn")
        resumed = run_study(runs_dir=tmp_path, run_id="torn", resume=True)
        assert resumed.complete and resumed.all_done
        assert victim not in resumed.skipped_cells
        assert len(resumed.skipped_cells) == len(_PROBE_GRID) - 1
        payload = pickle.loads(
            resumed.manifest.load_cell_payload(victim)
        )
        assert payload["token"] == 7919

    def test_resume_requires_run_id(self, tmp_path):
        with pytest.raises(ValueError, match="resume requires"):
            run_study(runs_dir=tmp_path, resume=True)

    def test_unknown_grid_and_scale_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown grid"):
            run_study(grid="nope", scale="quick", runs_dir=tmp_path)
        with pytest.raises(ValueError, match="unknown scale"):
            run_study(grid="tiny", scale="warp", runs_dir=tmp_path)


class TestManifestRunner:
    def test_renders_from_committed_payload(self, tmp_path):
        manifest = RunManifest.create(
            tmp_path, "r", grid="g", scale="s",
            cell_ids=["encode-32x32-1vo-1l"],
        )
        manifest.commit_cell(
            "encode-32x32-1vo-1l",
            pickle.dumps({"fake": "result"}),
            attempts=[{"index": 1, "outcome": "ok"}],
        )
        runner = ManifestRunner(manifest)
        assert runner.encode(32, 32) == {"fake": "result"}
        assert runner.run("encode", 32, 32, 1, 1) == {"fake": "result"}

    def test_quarantined_cell_raises_study_cell_error_with_history(
        self, tmp_path
    ):
        manifest = RunManifest.create(
            tmp_path, "r", grid="g", scale="s",
            cell_ids=["decode-32x32-1vo-1l"],
        )
        manifest.quarantine_cell(
            "decode-32x32-1vo-1l",
            [{"index": 1, "outcome": "worker-death"},
             {"index": 2, "outcome": "timeout"}],
        )
        runner = ManifestRunner(manifest)
        with pytest.raises(StudyCellError) as excinfo:
            runner.decode(32, 32)
        message = str(excinfo.value)
        assert "worker-death" in message and "timeout" in message


class TestChaosSweep:
    def test_seeded_sweep_holds_the_contract(self, tmp_path):
        report = run_chaos_sweep(
            n_cases=20, master_seed=0, profile="heavy", n_cells=2,
            runs_dir=tmp_path,
        )
        assert len(report.cases) == 20
        assert report.ok, report.summary()
        terminal = [
            status
            for case in report.cases
            for status in case.statuses.values()
        ]
        assert terminal and set(terminal) <= {"done", "quarantined"}
        # Heavy chaos must actually have bitten: retries happened.
        assert sum(case.attempts for case in report.cases) > 2 * 20

    def test_sweep_is_replayable_per_seed(self, tmp_path):
        kwargs = dict(n_cases=4, master_seed=3, profile="kills", n_cells=2)
        first = run_chaos_sweep(**kwargs)
        second = run_chaos_sweep(**kwargs)
        assert [c.statuses for c in first.cases] == [
            c.statuses for c in second.cases
        ]
        assert [c.attempts for c in first.cases] == [
            c.attempts for c in second.cases
        ]


def _seed_that_kills_first_attempt(cell_id: str) -> int:
    for seed in range(200):
        injector = ChaosInjector(seed, PROFILES["kills"])
        if injector.fault_at(POINT_WORKER_CELL, f"{cell_id}/a1") == "kill":
            return seed
    raise AssertionError("no killing seed in range")


class TestTinyGridIntegration:
    """The acceptance contract on the real pipeline: a chaos-killed run,
    resumed cleanly, is bit-identical to an uninterrupted run."""

    def test_killed_run_resumes_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        clean = run_study(
            grid="tiny", scale="quick", jobs=1, runs_dir=tmp_path,
            run_id="clean",
        )
        assert clean.all_done

        # Interrupted run: the encode cell's only attempt is chaos-killed.
        victim = "encode-32x32-1vo-1l"
        seed = _seed_that_kills_first_attempt(victim)
        monkeypatch.setenv("REPRO_CHAOS", f"{seed}:kills")
        interrupted = run_study(
            grid="tiny", scale="quick", jobs=1, runs_dir=tmp_path,
            run_id="interrupted",
            retry=RetryPolicy(max_attempts=1),
            budget=WorkerBudget(wall_s=60.0, heartbeat_s=10.0),
        )
        assert interrupted.statuses[victim] == "quarantined"
        record = interrupted.manifest.cell_record(victim)
        assert record.attempts[0]["outcome"] == "worker-death"

        # Resume without chaos: only unfinished cells re-execute, and the
        # completed run matches the clean one byte for byte.
        monkeypatch.delenv("REPRO_CHAOS")
        resumed = run_study(runs_dir=tmp_path, run_id="interrupted",
                            resume=True)
        assert resumed.all_done
        assert victim not in resumed.skipped_cells
        for cell in GRIDS["tiny"]:
            clean_bytes = clean.manifest.load_cell_payload(cell.cell_id)
            resumed_bytes = resumed.manifest.load_cell_payload(cell.cell_id)
            assert clean_bytes == resumed_bytes, cell.cell_id


class TestAssembleArtifacts:
    def test_artifacts_render_from_manifest(self, tmp_path, probe_grid,
                                            monkeypatch):
        outcome = run_study(
            grid=probe_grid, scale="quick", jobs=1, runs_dir=tmp_path,
            run_id="art",
        )

        def fake_experiment(runner):
            from repro.core.experiments import ExperimentResult

            payload = runner.run("encode", 8, 8, 1, 1)
            return ExperimentResult(
                "probe-exp", f"token={payload['token']}"
            )

        monkeypatch.setitem(EXPERIMENTS, "probe-exp", fake_experiment)
        results = assemble_artifacts(
            outcome.manifest, experiment_ids=("probe-exp",)
        )
        assert set(results) == {"probe-exp"}
        rendered = (
            outcome.manifest.run_dir / "artifacts" / "probe-exp.txt"
        ).read_text()
        assert rendered == "token=7919\n"
