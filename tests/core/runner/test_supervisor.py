"""The supervised pool: retry/backoff logic and live worker supervision.

Backoff *scheduling* is pure logic driven by a :class:`FakeClock` -- no
subprocess, no real sleep.  The live-pool tests use real workers with
sub-second budgets; each failure mode (crash, freeze, hang, leak) is
provoked deterministically via a marker file so the first attempt fails
and the retry succeeds.
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro.core.runner.clock import FakeClock
from repro.core.runner.supervisor import (
    BackoffScheduler,
    QuarantinedTaskError,
    RetryPolicy,
    SupervisedPool,
    TaskOutcome,
    WorkerBudget,
)

# -- picklable worker payloads (fork workers resolve these by reference) ----


def _ok(value):
    return value


def _boom(message):
    raise RuntimeError(message)


def _first_attempt(marker: str) -> bool:
    """True (and records the visit) only on the first call for ``marker``."""
    path = Path(marker)
    if path.exists():
        return False
    path.write_text("visited")
    return True


def _die_once(marker: str, value):
    if _first_attempt(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _freeze_once(marker: str, value):
    if _first_attempt(marker):
        os.kill(os.getpid(), signal.SIGSTOP)
    return value


def _hang_once(marker: str, value):
    if _first_attempt(marker):
        time.sleep(60)
    return value


def _swallow_deadline_once(marker: str, value):
    if _first_attempt(marker):
        # Defeat the soft in-worker deadline on purpose: the supervisor's
        # hard kill is the only thing that can end this attempt.
        while True:
            try:
                time.sleep(60)
            except BaseException:  # noqa: BLE001 - deliberately hostile
                pass
    return value


def _bloat_once(marker: str, value):
    if _first_attempt(marker):
        ballast = bytearray(256 * 1024 * 1024)
        time.sleep(30)
        del ballast
    return value


def _unpicklable():
    return lambda: None


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=100.0, jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay_before_attempt(a, rng) for a in (2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=3.0, jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.delay_before_attempt(8, rng) == 3.0

    def test_jitter_stays_within_band_and_is_seeded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        delays = [
            policy.delay_before_attempt(2, random.Random(7))
            for _ in range(5)
        ]
        assert len(set(delays)) == 1  # same seed, same draw
        sweep = [
            policy.delay_before_attempt(2, random.Random(seed))
            for seed in range(50)
        ]
        assert all(0.75 <= delay <= 1.25 for delay in sweep)
        assert len(set(sweep)) > 1


class TestBackoffScheduler:
    def _scheduler(self, **overrides):
        policy = RetryPolicy(
            max_attempts=overrides.pop("max_attempts", 3),
            base_delay_s=1.0, multiplier=2.0, max_delay_s=60.0, jitter=0.0,
        )
        clock = FakeClock()
        return BackoffScheduler(policy, clock, seed=0), clock

    def test_retry_matures_only_after_backoff(self):
        scheduler, clock = self._scheduler()
        scheduler.record_start("t")
        delay = scheduler.schedule_retry("t")
        assert delay == 1.0
        assert scheduler.pop_ready() == []
        assert scheduler.seconds_until_ready() == pytest.approx(1.0)
        clock.advance(0.5)
        assert scheduler.pop_ready() == []
        clock.advance(0.6)
        assert scheduler.pop_ready() == ["t"]
        assert scheduler.seconds_until_ready() is None

    def test_backoff_grows_per_attempt(self):
        scheduler, clock = self._scheduler(max_attempts=4)
        delays = []
        for _ in range(3):
            scheduler.record_start("t")
            delays.append(scheduler.schedule_retry("t"))
            clock.advance(120.0)
            assert scheduler.pop_ready() == ["t"]
        assert delays == [1.0, 2.0, 4.0]

    def test_attempts_exhaust(self):
        scheduler, clock = self._scheduler(max_attempts=2)
        scheduler.record_start("t")
        assert scheduler.schedule_retry("t") is not None
        clock.advance(60.0)
        scheduler.pop_ready()
        scheduler.record_start("t")
        assert scheduler.schedule_retry("t") is None

    def test_independent_tasks_interleave_in_schedule_order(self):
        scheduler, clock = self._scheduler()
        scheduler.record_start("a")
        scheduler.record_start("b")
        scheduler.schedule_retry("a")
        scheduler.schedule_retry("b")
        clock.advance(10.0)
        assert scheduler.pop_ready() == ["a", "b"]

    def test_no_real_sleep_needed(self):
        started = time.monotonic()
        scheduler, clock = self._scheduler(max_attempts=10)
        policy_minutes = 0.0
        for _ in range(9):
            scheduler.record_start("t")
            delay = scheduler.schedule_retry("t")
            if delay is None:
                break
            policy_minutes += delay
            clock.advance(delay)
            scheduler.pop_ready()
        assert policy_minutes > 60.0  # minutes of simulated backoff...
        assert time.monotonic() - started < 5.0  # ...in real milliseconds


def _pool(**overrides) -> SupervisedPool:
    defaults = dict(
        max_workers=2,
        budget=WorkerBudget(wall_s=5.0, heartbeat_s=2.0),
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.05, jitter=0.0
        ),
    )
    defaults.update(overrides)
    return SupervisedPool(**defaults)


class TestSupervisedPoolHappyPath:
    def test_results_in_task_order(self):
        outcomes = _pool().run(
            [(f"t{i}", _ok, (i * i,)) for i in range(5)]
        )
        assert list(outcomes) == [f"t{i}" for i in range(5)]
        assert [o.result for o in outcomes.values()] == [0, 1, 4, 9, 16]
        assert all(o.ok and len(o.attempts) == 1 for o in outcomes.values())

    def test_empty_task_list(self):
        assert _pool().run([]) == {}

    def test_duplicate_task_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _pool().run([("t", _ok, (1,)), ("t", _ok, (2,))])

    def test_results_or_raise_unwraps(self):
        results = _pool().results_or_raise([("t", _ok, ("payload",))])
        assert results == {"t": "payload"}


class TestSupervisedPoolFailures:
    def test_exception_retried_to_quarantine_with_history(self):
        outcomes = _pool().run([("t", _boom, ("kaboom",))])
        outcome = outcomes["t"]
        assert outcome.quarantined
        assert len(outcome.attempts) == 3
        assert [a.outcome for a in outcome.attempts] == ["error"] * 3
        assert "kaboom" in outcome.attempts[0].error
        assert "kaboom" in outcome.history()

    def test_results_or_raise_raises_with_history(self):
        with pytest.raises(QuarantinedTaskError, match="kaboom"):
            _pool().results_or_raise([("t", _boom, ("kaboom",))])

    def test_quarantine_does_not_poison_other_tasks(self):
        outcomes = _pool().run(
            [("bad", _boom, ("x",)), ("good", _ok, (42,))]
        )
        assert outcomes["bad"].quarantined
        assert outcomes["good"].ok and outcomes["good"].result == 42

    def test_unpicklable_result_is_an_error_not_a_hang(self):
        outcomes = _pool().run([("t", _unpicklable, ())])
        outcome = outcomes["t"]
        assert outcome.quarantined
        assert "not picklable" in outcome.attempts[0].error


class TestSupervisedPoolCrashes:
    def test_killed_worker_detected_and_task_retried(self, tmp_path):
        marker = str(tmp_path / "died")
        outcomes = _pool().run([("t", _die_once, (marker, "recovered"))])
        outcome = outcomes["t"]
        assert outcome.ok and outcome.result == "recovered"
        assert [a.outcome for a in outcome.attempts] == ["worker-death", "ok"]
        assert "exited" in outcome.attempts[0].error

    def test_frozen_worker_detected_by_stale_heartbeat(self, tmp_path):
        marker = str(tmp_path / "froze")
        pool = _pool(
            max_workers=1,
            budget=WorkerBudget(wall_s=None, heartbeat_s=0.4),
        )
        started = time.monotonic()
        outcomes = pool.run([("t", _freeze_once, (marker, "thawed"))])
        outcome = outcomes["t"]
        assert outcome.ok and outcome.result == "thawed"
        assert [a.outcome for a in outcome.attempts] == ["stalled", "ok"]
        assert time.monotonic() - started < 30

    def test_hung_worker_cut_by_soft_deadline(self, tmp_path):
        marker = str(tmp_path / "hung")
        pool = _pool(budget=WorkerBudget(wall_s=0.3, heartbeat_s=5.0))
        started = time.monotonic()
        outcomes = pool.run([("t", _hang_once, (marker, "freed"))])
        outcome = outcomes["t"]
        assert outcome.ok and outcome.result == "freed"
        assert [a.outcome for a in outcome.attempts] == ["timeout", "ok"]
        assert "soft deadline" in outcome.attempts[0].error
        assert time.monotonic() - started < 30

    def test_deadline_swallower_cut_by_hard_kill(self, tmp_path):
        # A worker that swallows BudgetExpired can only be stopped by the
        # supervisor's process-level hard deadline.
        marker = str(tmp_path / "swallowed")
        pool = _pool(
            budget=WorkerBudget(
                wall_s=0.3, heartbeat_s=30.0, hard_margin_s=0.2
            ),
        )
        started = time.monotonic()
        outcomes = pool.run(
            [("t", _swallow_deadline_once, (marker, "stopped"))]
        )
        outcome = outcomes["t"]
        assert outcome.ok and outcome.result == "stopped"
        assert [a.outcome for a in outcome.attempts] == ["timeout", "ok"]
        assert "hard wall-clock deadline" in outcome.attempts[0].error
        assert time.monotonic() - started < 30

    def test_rss_watchdog_kills_bloated_worker(self, tmp_path):
        marker = str(tmp_path / "bloated")
        pool = _pool(
            budget=WorkerBudget(
                wall_s=20.0, heartbeat_s=30.0,
                rss_bytes=128 * 1024 * 1024,
            ),
        )
        outcomes = pool.run([("t", _bloat_once, (marker, "slimmed"))])
        outcome = outcomes["t"]
        assert outcome.ok and outcome.result == "slimmed"
        assert [a.outcome for a in outcome.attempts] == ["rss", "ok"]
        assert outcome.attempts[0].rss_peak_bytes > 128 * 1024 * 1024


class TestTaskOutcome:
    def test_history_is_readable(self):
        from repro.core.runner.supervisor import TaskAttempt

        outcome = TaskOutcome(
            "t", False, None,
            [
                TaskAttempt(1, "worker-death", "exited -9", 0.5, 0, 123),
                TaskAttempt(2, "ok", "", 0.2, 0, 124),
            ],
        )
        history = outcome.history()
        assert "attempt 1: worker-death" in history
        assert "attempt 2: ok" in history
