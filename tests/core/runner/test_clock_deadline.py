"""The injectable clocks and the shared wall-clock budget utility."""

from __future__ import annotations

import threading
import time

from repro.core.runner.clock import FakeClock, RealClock
from repro.core.runner.deadline import BudgetExpired, time_budget


class TestFakeClock:
    def test_sleep_advances_instantly_and_records(self):
        clock = FakeClock(start=100.0)
        clock.sleep(5.0)
        clock.sleep(0.25)
        assert clock.monotonic() == 105.25
        assert clock.sleeps == [5.0, 0.25]

    def test_negative_sleep_clamps_to_zero(self):
        clock = FakeClock()
        clock.sleep(-3.0)
        assert clock.monotonic() == 0.0
        assert clock.sleeps == [0.0]

    def test_advance_moves_time_without_a_sleep(self):
        clock = FakeClock()
        clock.advance(7.0)
        assert clock.monotonic() == 7.0
        assert clock.sleeps == []


class TestRealClock:
    def test_monotonic_tracks_time(self):
        clock = RealClock()
        first = clock.monotonic()
        clock.sleep(0.01)
        assert clock.monotonic() > first

    def test_nonpositive_sleep_returns_immediately(self):
        started = time.monotonic()
        RealClock().sleep(-1.0)
        assert time.monotonic() - started < 0.5


class TestTimeBudget:
    def test_nonpositive_budget_disarms(self):
        with time_budget(0.0) as armed:
            assert armed is False
        with time_budget(-1.0) as armed:
            assert armed is False

    def test_expiry_on_main_thread(self):
        started = time.monotonic()
        try:
            with time_budget(0.2) as armed:
                assert armed
                while True:
                    time.sleep(0.01)
        except BudgetExpired:
            pass
        else:  # pragma: no cover - the failure we guard against
            raise AssertionError("budget never fired")
        assert time.monotonic() - started < 5

    def test_fast_body_is_untouched(self):
        with time_budget(10.0) as armed:
            assert armed
            value = 1 + 1
        assert value == 2

    def test_expiry_off_main_thread(self):
        # No SIGALRM here: the async-exception fallback must interrupt a
        # pure-Python loop running in a worker thread.
        outcomes = []

        def worker():
            try:
                with time_budget(0.2) as armed:
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        pass
                outcomes.append(("no-expiry", armed))
            except BudgetExpired:
                outcomes.append(("expired", True))

        thread = threading.Thread(target=worker)
        started = time.monotonic()
        thread.start()
        thread.join(timeout=20)
        assert outcomes == [("expired", True)]
        assert time.monotonic() - started < 15

    def test_off_main_thread_fast_body_not_poisoned(self):
        # A budget that never fires must not leave a pending async
        # exception behind to detonate in later code.
        outcomes = []

        def worker():
            with time_budget(30.0):
                pass
            time.sleep(0.05)
            outcomes.append("clean")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10)
        assert outcomes == ["clean"]
