"""Tests for the experiment registry, scales, and report rendering."""

import pytest

from repro.core.experiments import (
    EXPERIMENTS,
    SCALES,
    ExperimentScale,
    StudyRunner,
    current_scale,
    run_experiment,
)
from repro.core.machines import SGI_O2
from repro.core.metrics import MetricReport
from repro.core.report import render_series, render_table


def fake_report(**overrides):
    params = dict(
        machine="R12K 1MB",
        l1_miss_rate=0.001,
        l1_miss_time=0.005,
        l1_line_reuse=1000.0,
        l2_miss_rate=0.3,
        l2_line_reuse=2.0,
        dram_time=0.02,
        l1_l2_bw_mb_s=10.0,
        l2_dram_bw_mb_s=5.0,
        prefetch_l1_miss=0.4,
        seconds=1.0,
        bus_utilization=0.01,
        graduated_loads=1000,
        graduated_stores=100,
    )
    params.update(overrides)
    return MetricReport(**params)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {f"table{i}" for i in range(1, 9)} | {"fig2", "fig3", "fig4"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_table1_needs_no_simulation(self):
        result = run_experiment("table1", StudyRunner(SCALES["quick"]))
        assert "R12000" in result.text
        assert "680" in result.text

    def test_scales(self):
        assert SCALES["paper"].n_frames == 30
        assert SCALES["quick"].n_frames < SCALES["default"].n_frames

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_scale_sampling(self):
        assert ExperimentScale("x", 4, 1.0).sampling() is None
        assert ExperimentScale("x", 4, 0.5).sampling() is not None


class TestRunnerCaching:
    def test_encode_runs_cached(self):
        runner = StudyRunner(ExperimentScale("tiny", 2, 1.0))
        first = runner.encode(96, 64)
        second = runner.encode(96, 64)
        assert first is second

    def test_decode_reuses_encode_streams(self):
        runner = StudyRunner(ExperimentScale("tiny", 2, 1.0))
        enc = runner.encode(96, 64)
        dec = runner.decode(96, 64)
        assert dec.encoded is not None
        assert runner._streams[(96, 64, 1, 1)] is enc.encoded


class TestRenderTable:
    def _measured(self):
        labels = ("R12K 1MB", "R10K 2MB", "R12K 8MB")
        return {
            "720x576": {label: fake_report(machine=label) for label in labels},
            "1024x768": {label: fake_report(machine=label) for label in labels},
        }

    def test_contains_all_rows_and_columns(self):
        text = render_table("TableX", self._measured())
        assert "L1C miss rate" in text
        assert "prefetch L1C miss" in text
        assert "720x576 R12K 1MB" in text
        assert "1024x768 R12K 8MB" in text

    def test_paper_reference_column(self):
        paper = {"720x576": {"l1_miss_rate": (0.0009, None, None)}}
        text = render_table("TableX", self._measured(), paper)
        assert "(0.09%)" in text
        assert "(--)" in text

    def test_render_series(self):
        text = render_series("FigX", {"metric": [0.1, 0.2, None]}, ["a", "b", "c"])
        assert "FigX" in text
        assert "0.1" in text
        assert "--" in text


class TestPaperData:
    def test_table5_values_transcribed(self):
        from repro.core.paperdata import TABLE5_DECODE_3VO1L

        assert TABLE5_DECODE_3VO1L["720x576"]["l2_miss_rate"][0] == 0.3656
        assert TABLE5_DECODE_3VO1L["1024x768"]["dram_time"][2] == 0.019

    def test_rows_cover_metric_report_fields(self):
        from repro.core.paperdata import ROWS

        report = fake_report()
        for row in ROWS:
            assert hasattr(report, row)
