"""Tests for the timing model and clock accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.dram import BusSpec, DramSpec
from repro.memsim.timing import Clock, TimingSpec


def spec(**overrides):
    params = dict(
        clock_mhz=300.0,
        ipc=1.2,
        l2_hit_latency_cycles=10.0,
        mshr=4,
        hide_l2=0.5,
        hide_dram=0.25,
    )
    params.update(overrides)
    return TimingSpec(**params)


class TestTimingSpec:
    def test_rejects_bad_hide_fractions(self):
        with pytest.raises(ValueError):
            spec(hide_l2=1.0)
        with pytest.raises(ValueError):
            spec(hide_dram=-0.1)

    def test_rejects_bad_mshr_and_ipc(self):
        with pytest.raises(ValueError):
            spec(mshr=0)
        with pytest.raises(ValueError):
            spec(ipc=0)

    def test_compute_cycles(self):
        assert spec().compute_cycles(6, 3, 3) == pytest.approx(12 / 1.2)

    def test_l1_miss_stall_scales_with_exposure(self):
        assert spec().l1_miss_stall(10) == pytest.approx(10 * 10.0 * 0.5)

    def test_dram_stall_zero_for_no_misses(self):
        assert spec().dram_stall(0, 84.0) == 0.0

    def test_dram_stall_mlp_grouping(self):
        timing = spec(mshr=4, hide_dram=0.0)
        one = timing.dram_stall(1, 100.0)
        four = timing.dram_stall(4, 100.0)
        five = timing.dram_stall(5, 100.0)
        assert one == four == 100.0  # four misses overlap fully
        assert five == 200.0  # fifth miss starts a new group

    @given(
        misses=st.integers(min_value=0, max_value=10_000),
        mshr=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_dram_stall_monotone_in_misses(self, misses, mshr):
        timing = spec(mshr=mshr)
        assert timing.dram_stall(misses, 100.0) <= timing.dram_stall(misses + 1, 100.0)


class TestClock:
    def test_total_and_seconds(self):
        clock = Clock(compute_cycles=200.0, l1_stall_cycles=50.0, dram_stall_cycles=50.0)
        assert clock.total_cycles == 300.0
        assert clock.seconds(300.0) == pytest.approx(1e-6)

    def test_add_and_scaled(self):
        a = Clock(10.0, 1.0, 2.0)
        b = Clock(5.0, 1.0, 0.0)
        a.add(b)
        assert a.compute_cycles == 15.0
        half = a.scaled(0.5)
        assert half.compute_cycles == 7.5
        assert half.dram_stall_cycles == 1.0


class TestDramAndBus:
    def test_dram_latency_conversion(self):
        assert DramSpec(latency_ns=280.0).latency_cycles(300.0) == pytest.approx(84.0)

    def test_bus_peak_and_utilization(self):
        bus = BusSpec(width_bits=64, clock_mhz=133.0, sustained_mb_s=680.0)
        assert bus.peak_mb_s == pytest.approx(1064.0)
        assert bus.utilization(68.0) == pytest.approx(0.1)
