"""Tests for access-event batches and run-length coalescing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.events import (
    KIND_READ,
    KIND_WRITE,
    AccessBatch,
    TraceStats,
    coalesce_lines,
)


class TestCoalesceLines:
    def test_empty(self):
        lines, counts = coalesce_lines(np.array([], dtype=np.int64))
        assert lines.size == 0
        assert counts.size == 0

    def test_all_distinct(self):
        lines, counts = coalesce_lines(np.array([1, 2, 3]))
        assert lines.tolist() == [1, 2, 3]
        assert counts.tolist() == [1, 1, 1]

    def test_runs_merge(self):
        lines, counts = coalesce_lines(np.array([5, 5, 5, 7, 7, 5]))
        assert lines.tolist() == [5, 7, 5]
        assert counts.tolist() == [3, 2, 1]

    def test_existing_counts_are_summed(self):
        lines, counts = coalesce_lines(np.array([1, 1, 2]), np.array([4, 6, 10]))
        assert lines.tolist() == [1, 2]
        assert counts.tolist() == [10, 10]

    def test_order_preserved(self):
        stream = np.array([3, 1, 3, 1])
        lines, _ = coalesce_lines(stream)
        assert lines.tolist() == [3, 1, 3, 1]


@given(st.lists(st.integers(min_value=0, max_value=9), max_size=200))
@settings(max_examples=60, deadline=None)
def test_property_coalesce_preserves_totals_and_order(raw):
    stream = np.array(raw, dtype=np.int64)
    lines, counts = coalesce_lines(stream)
    assert counts.sum() == len(raw)
    # No two adjacent merged lines are equal.
    assert not np.any(lines[1:] == lines[:-1])
    # Expanding the run-length form reproduces the original stream.
    assert np.repeat(lines, counts).tolist() == raw


class TestAccessBatch:
    def test_from_accesses_coalesces(self):
        batch = AccessBatch.from_accesses(KIND_READ, np.array([1, 1, 2]))
        assert batch.n_events == 2
        assert batch.n_accesses == 3

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            AccessBatch(KIND_READ, np.array([1, 2]), np.array([1]))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AccessBatch(7, np.array([1]), np.array([1]))

    def test_repr_mentions_kind_and_phase(self):
        batch = AccessBatch(KIND_WRITE, np.array([1]), np.array([2]), phase="dct")
        assert "write" in repr(batch)
        assert "dct" in repr(batch)


class TestTraceStats:
    def test_aggregation(self):
        stats = TraceStats()
        stats.add(AccessBatch(KIND_READ, np.array([1]), np.array([5]), phase="me"))
        stats.add(AccessBatch(KIND_WRITE, np.array([2]), np.array([3]), phase="me"))
        assert stats.reads == 5
        assert stats.writes == 3
        assert stats.events == 2
        assert stats.phases == {"me": 8}
