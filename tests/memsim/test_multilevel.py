"""Tests for the N-level hierarchy engine."""

import numpy as np
import pytest

from repro.memsim.cache import CacheGeometry
from repro.memsim.events import KIND_PREFETCH, KIND_READ, KIND_WRITE, AccessBatch
from repro.memsim.multilevel import MultiLevelHierarchy


def make_stack(levels=3):
    geometries = [
        CacheGeometry(1 << 10, 32, 2),
        CacheGeometry(4 << 10, 64, 2),
        CacheGeometry(16 << 10, 128, 4),
    ][:levels]
    latencies = [8.0, 30.0, 100.0][:levels]
    return MultiLevelHierarchy(geometries, latencies, ipc=1.5, clock_mhz=1000.0,
                               name="test")


def read(lines, counts=None):
    lines = np.asarray(lines)
    counts = np.ones_like(lines) if counts is None else np.asarray(counts)
    return AccessBatch(KIND_READ, lines, counts)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiLevelHierarchy([], [])
        with pytest.raises(ValueError):
            MultiLevelHierarchy([CacheGeometry(1024, 32, 2)], [1.0, 2.0])

    def test_describe(self):
        assert "test" in make_stack().describe()


class TestWalk:
    def test_cold_miss_fills_all_levels(self):
        stack = make_stack()
        stack.process(read([0]))
        for level in range(3):
            assert stack.counters.levels[level].misses == 1
        assert stack.counters.memory_fills == 1

    def test_l1_hit_stops_walk(self):
        stack = make_stack()
        stack.process(read([0]))
        stack.process(read([0]))
        assert stack.counters.levels[0].hits >= 1
        assert stack.counters.levels[1].misses == 1  # not consulted again

    def test_victim_found_in_next_level(self):
        stack = make_stack()
        # Fill L1's set 0 beyond capacity; evicted lines stay in L2.
        conflict = [0, 16, 32]  # same L1 set (16 sets), distinct L2 lines
        stack.process(read(conflict))
        stack.process(read([0]))  # L1 miss, L2 hit
        assert stack.counters.levels[1].hits == 1
        assert stack.counters.memory_fills == 3

    def test_run_length_counts_hit_l1(self):
        stack = make_stack()
        stack.process(read([5], counts=[40]))
        assert stack.counters.accesses == 40
        assert stack.counters.levels[0].hits == 39

    def test_dirty_writeback_spills_down(self):
        stack = make_stack()
        writes = AccessBatch(KIND_WRITE, np.array([0]), np.array([1]))
        stack.process(writes)
        # Evict line 0 from L1 (2-way, 16 sets).
        stack.process(read([16, 32]))
        assert stack.counters.levels[0].writebacks == 1

    def test_prefetch_ignored(self):
        stack = make_stack()
        stack.process(AccessBatch(KIND_PREFETCH, np.array([0]), np.array([1])))
        assert stack.counters.accesses == 0

    def test_stall_accounting(self):
        stack = make_stack()
        stack.process(read([0]))  # full walk: 8 + 30 + 100
        assert stack.counters.stall_cycles == pytest.approx(138.0)
        stack.process(read([0]))  # L1 hit: no stall
        assert stack.counters.stall_cycles == pytest.approx(138.0)

    def test_metrics_helpers(self):
        stack = make_stack()
        stack.process(read(np.arange(64)))
        assert 0 < stack.l1_miss_rate() <= 1.0
        assert 0 < stack.stall_fraction() < 1.0
        assert stack.traffic_to_memory_bytes() > 0
        assert stack.seconds > 0

    def test_two_level_stack_matches_intuition(self, rng):
        """A bigger last level must not miss to memory more often."""
        small = MultiLevelHierarchy(
            [CacheGeometry(1 << 10, 32, 2), CacheGeometry(4 << 10, 128, 2)],
            [8.0, 100.0],
        )
        big = MultiLevelHierarchy(
            [CacheGeometry(1 << 10, 32, 2), CacheGeometry(64 << 10, 128, 2)],
            [8.0, 100.0],
        )
        lines = rng.integers(0, 1024, size=4000)
        for stack in (small, big):
            stack.process(read(lines))
        assert big.counters.memory_fills <= small.counters.memory_fills
