"""Tests for the two-level hierarchy engine, including a differential check
against the reference cache model and inclusion/conservation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import CacheGeometry, SetAssocCache
from repro.memsim.events import KIND_PREFETCH, KIND_READ, KIND_WRITE, AccessBatch
from repro.memsim.hierarchy import HierarchyCounters, MemoryHierarchy
from repro.memsim.timing import TimingSpec


def make_timing(**overrides):
    params = dict(
        clock_mhz=300.0,
        ipc=1.2,
        l2_hit_latency_cycles=10.0,
        mshr=4,
        hide_l2=0.6,
        hide_dram=0.3,
    )
    params.update(overrides)
    return TimingSpec(**params)


def make_hierarchy(l1_kb=1, l2_kb=4, l1_ways=2, l2_ways=2):
    return MemoryHierarchy(
        CacheGeometry(l1_kb << 10, 32, l1_ways),
        CacheGeometry(l2_kb << 10, 128, l2_ways),
        make_timing(),
    )


def read_batch(lines, counts=None, phase="other", alu_ops=0):
    lines = np.asarray(lines)
    counts = np.ones_like(lines) if counts is None else np.asarray(counts)
    return AccessBatch(KIND_READ, lines, counts, phase=phase, alu_ops=alu_ops)


class TestBasics:
    def test_l1_line_must_match_granule(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                CacheGeometry(1024, 64, 2), CacheGeometry(4096, 128, 2), make_timing()
            )

    def test_equal_line_sizes_are_legal(self):
        # L2 lines equal to L1 lines are allowed; smaller is impossible by
        # the granule rule, so the constructor only rejects l2 < l1.
        hier = MemoryHierarchy(
            CacheGeometry(1024, 32, 2), CacheGeometry(4096, 32, 2), make_timing()
        )
        hier.process(read_batch([0, 1]))
        assert hier.total.l2_misses == 2

    def test_cold_miss_goes_to_both_levels(self):
        hier = make_hierarchy()
        hier.process(read_batch([0]))
        assert hier.total.l1_misses == 1
        assert hier.total.l2_misses == 1
        assert hier.total.l1_hits == 0

    def test_run_length_counts_hit_after_fill(self):
        hier = make_hierarchy()
        hier.process(read_batch([0], counts=[16]))
        assert hier.total.graduated_loads == 16
        assert hier.total.l1_misses == 1
        assert hier.total.l1_hits == 15

    def test_l2_spatial_locality(self):
        """Granules 0..3 share one 128-byte L2 line: one L2 miss, four L1 misses."""
        hier = make_hierarchy()
        hier.process(read_batch([0, 1, 2, 3]))
        assert hier.total.l1_misses == 4
        assert hier.total.l2_misses == 1
        assert hier.total.l2_hits == 3

    def test_counter_conservation(self, rng):
        hier = make_hierarchy()
        lines = rng.integers(0, 4096, size=3000)
        hier.process(read_batch(lines))
        total = hier.total
        assert total.l1_hits + total.l1_misses == total.graduated_loads
        assert total.l2_hits + total.l2_misses == total.l1_misses

    def test_write_then_evict_generates_writeback_traffic(self):
        hier = make_hierarchy(l1_kb=1)
        hier.process(AccessBatch(KIND_WRITE, np.array([0]), np.array([1])))
        # Push line 0 out of its L1 set (1 KB, 2-way, 16 sets: stride 16).
        hier.process(read_batch([16, 32]))
        assert hier.total.l1_writebacks == 1

    def test_phase_counters_sum_to_total(self):
        hier = make_hierarchy()
        hier.process(read_batch([0, 1], phase="me"))
        hier.process(read_batch([512, 513], phase="dct"))
        merged = HierarchyCounters()
        for phase in hier.phases.values():
            merged.add(phase)
        assert merged.graduated_loads == hier.total.graduated_loads
        assert merged.l1_misses == hier.total.l1_misses
        assert merged.l2_misses == hier.total.l2_misses

    def test_access_line_convenience(self):
        hier = make_hierarchy()
        assert hier.access_line(5, False) is False
        assert hier.access_line(5, False) is True


class TestInclusion:
    def test_inclusion_invariant_random_stream(self, rng):
        hier = make_hierarchy(l1_kb=1, l2_kb=2)
        for _ in range(20):
            lines = rng.integers(0, 512, size=200)
            hier.process(read_batch(lines))
            assert hier.check_inclusion()

    def test_l2_eviction_back_invalidates_l1(self):
        # L2: 256 B, 128 B lines, 1 way -> 2 sets. L2 lines 0 and 2 conflict.
        hier = MemoryHierarchy(
            CacheGeometry(1 << 10, 32, 2),
            CacheGeometry(256, 128, 1),
            make_timing(),
        )
        hier.process(read_batch([0]))  # granule 0 -> L2 line 0
        assert 0 in hier.l1_contents()
        hier.process(read_batch([8]))  # granule 8 -> L2 line 2, evicts L2 line 0
        assert 0 not in hier.l1_contents()
        assert hier.check_inclusion()

    def test_dirty_l1_data_folded_into_l2_writeback(self):
        hier = MemoryHierarchy(
            CacheGeometry(1 << 10, 32, 2),
            CacheGeometry(256, 128, 1),
            make_timing(),
        )
        hier.process(AccessBatch(KIND_WRITE, np.array([0]), np.array([1])))
        hier.process(read_batch([8]))  # evict L2 line 0 while granule 0 is dirty in L1
        assert hier.total.l2_writebacks == 1
        assert hier.total.l1_writebacks == 1


class TestPrefetch:
    def test_prefetch_miss_fills_and_later_read_hits(self):
        hier = make_hierarchy()
        hier.process(AccessBatch(KIND_PREFETCH, np.array([0]), np.array([1])))
        assert hier.total.prefetch_l1_misses == 1
        hier.process(read_batch([0]))
        assert hier.total.l1_misses == 0
        assert hier.total.l1_hits == 1

    def test_prefetch_to_resident_line_is_wasted(self):
        hier = make_hierarchy()
        hier.process(read_batch([0]))
        hier.process(AccessBatch(KIND_PREFETCH, np.array([0]), np.array([1])))
        assert hier.total.prefetch_l1_hits == 1
        assert hier.total.prefetch_l1_misses == 0

    def test_prefetch_never_stalls(self):
        hier = make_hierarchy()
        hier.process(AccessBatch(KIND_PREFETCH, np.array([0, 64]), np.array([1, 1])))
        assert hier.total.clock.dram_stall_cycles == 0
        assert hier.total.clock.l1_stall_cycles == 0

    def test_duplicate_prefetch_in_one_batch_counts_hit(self):
        hier = make_hierarchy()
        hier.process(
            AccessBatch(KIND_PREFETCH, np.array([0, 5, 0]), np.array([1, 1, 1]))
        )
        assert hier.total.prefetch_issued == 3
        assert hier.total.prefetch_l1_misses == 2
        assert hier.total.prefetch_l1_hits == 1


class TestDifferentialAgainstReference:
    """The inlined hot loop must match the composed reference caches exactly
    (miss counts at both levels) for write-free streams, where the reference
    composition is unambiguous."""

    @given(
        st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=400)
    )
    @settings(max_examples=40, deadline=None)
    def test_read_stream_differential(self, raw_lines):
        l1_geom = CacheGeometry(1 << 10, 32, 2)
        l2_geom = CacheGeometry(4 << 10, 128, 2)
        hier = MemoryHierarchy(l1_geom, l2_geom, make_timing())
        hier.process(read_batch(raw_lines))

        ref_l1 = SetAssocCache(l1_geom)
        ref_l2 = SetAssocCache(l2_geom)
        for granule in raw_lines:
            if ref_l1.access(granule, False):
                continue
            if not ref_l2.access(granule >> 2, False) and ref_l2.last_victim is not None:
                # Model inclusion: back-invalidate the granules covered by
                # the evicted L2 line.
                base = ref_l2.last_victim << 2
                for covered in range(base, base + 4):
                    ref_l1.invalidate(covered)
        assert hier.total.l1_misses == ref_l1.misses
        assert hier.total.l2_misses == ref_l2.misses


class TestTimingCharges:
    def test_compute_cycles_accumulate(self):
        hier = make_hierarchy()
        hier.process(read_batch([0], counts=[10], alu_ops=14))
        # (10 loads + 14 alu) / ipc 1.2
        assert hier.total.clock.compute_cycles == pytest.approx(24 / 1.2)

    def test_stalls_attributed_to_levels(self):
        hier = make_hierarchy()
        hier.process(read_batch([0, 1]))  # 2 L1 misses, 1 L2 miss
        clock = hier.total.clock
        assert clock.l1_stall_cycles == pytest.approx(1 * 10.0 * 0.4)
        assert clock.dram_stall_cycles > 0

    def test_bandwidth_bytes(self):
        hier = make_hierarchy()
        hier.process(read_batch([0, 1, 2, 3]))
        assert hier.total.l1_l2_bytes == 4 * 32
        assert hier.total.l2_dram_bytes(128) == 1 * 128


class TestScaling:
    def test_scaled_counters_are_linear(self):
        counters = HierarchyCounters(graduated_loads=10, l1_misses=4, l2_misses=2)
        counters.clock.compute_cycles = 100.0
        doubled = counters.scaled(2.0)
        assert doubled.graduated_loads == 20
        assert doubled.l1_misses == 8
        assert doubled.clock.compute_cycles == 200.0
        # Ratios (the paper's metrics) are invariant under scaling.
        assert doubled.l1_misses / doubled.graduated_loads == pytest.approx(
            counters.l1_misses / counters.graduated_loads
        )
