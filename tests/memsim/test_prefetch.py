"""Tests for the compiler-style software-prefetch model."""

import numpy as np

from repro.memsim.cache import CacheGeometry
from repro.memsim.events import GRANULE_BYTES, KIND_PREFETCH
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import prefetch_stream
from repro.memsim.timing import TimingSpec


def make_hierarchy():
    return MemoryHierarchy(
        CacheGeometry(32 << 10, 32, 2),
        CacheGeometry(1 << 20, 128, 2),
        TimingSpec(300.0, 1.2, 10.0, 4, 0.5, 0.25),
    )


class TestPrefetchStream:
    def test_short_stream_yields_none(self):
        assert prefetch_stream(0, 16) is None

    def test_kind_and_phase(self):
        batch = prefetch_stream(0, 1024, phase="copy")
        assert batch.kind == KIND_PREFETCH
        assert batch.phase == "copy"

    def test_one_prefetch_per_step(self):
        batch = prefetch_stream(0, 1024, step_bytes=16)
        assert batch.n_accesses == 1024 // 16

    def test_two_prefetches_per_granule_with_default_step(self):
        """16-byte steps over 32-byte granules: half the prefetches are
        redundant, reproducing the paper's 'over half hit L1' observation."""
        batch = prefetch_stream(0, 2048, step_bytes=16)
        assert batch.n_events * 2 == batch.n_accesses

    def test_lookahead_offsets_addresses(self):
        batch = prefetch_stream(0, 1024, ahead_bytes=64)
        assert batch.lines[0] == 64 // GRANULE_BYTES

    def test_cold_prefetch_miss_fraction_near_half(self):
        hier = make_hierarchy()
        batch = prefetch_stream(0, 8192)
        hier.process(batch)
        total = hier.total
        miss_fraction = total.prefetch_l1_misses / total.prefetch_issued
        assert 0.4 < miss_fraction <= 0.55

    def test_prefetch_covers_later_demand_reads(self):
        hier = make_hierarchy()
        hier.process(prefetch_stream(0, 4096, ahead_bytes=0))
        lines = np.arange(4096 // GRANULE_BYTES)
        from repro.memsim.events import KIND_READ, AccessBatch

        hier.process(AccessBatch(KIND_READ, lines, np.ones_like(lines)))
        assert hier.total.l1_misses == 0
