"""Unit and property tests for the reference set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import CacheGeometry, SetAssocCache


def make_cache(size=1024, line=32, ways=2):
    return SetAssocCache(CacheGeometry(size, line, ways))


class TestCacheGeometry:
    def test_basic_derivations(self):
        geom = CacheGeometry(32 * 1024, 32, 2)
        assert geom.n_sets == 512
        assert geom.n_lines == 1024
        assert geom.line_shift == 5
        assert geom.set_shift == 0

    def test_l2_geometry(self):
        geom = CacheGeometry(1 << 20, 128, 2)
        assert geom.n_sets == 4096
        assert geom.line_shift == 7
        assert geom.set_shift == 2

    def test_describe_mb_and_kb(self):
        assert CacheGeometry(1 << 20, 128, 2).describe() == "1 MB, 2-way, 128 B lines"
        assert CacheGeometry(32 << 10, 32, 2).describe() == "32 KB, 2-way, 32 B lines"

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 48, 2)

    def test_rejects_line_smaller_than_granule(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 16, 2)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 32, 2)

    def test_rejects_nonpositive_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 32, 0)


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0, False)
        assert cache.access(0, False)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_eviction_within_set(self):
        # 1 KB, 32 B lines, 2 ways -> 16 sets. Lines 0, 16, 32 share set 0.
        cache = make_cache()
        cache.access(0, False)
        cache.access(16, False)
        cache.access(32, False)  # evicts line 0 (LRU)
        assert not cache.probe(0)
        assert cache.probe(16)
        assert cache.probe(32)

    def test_access_refreshes_lru(self):
        cache = make_cache()
        cache.access(0, False)
        cache.access(16, False)
        cache.access(0, False)  # line 0 becomes MRU
        cache.access(32, False)  # should evict 16, not 0
        assert cache.probe(0)
        assert not cache.probe(16)

    def test_dirty_victim_produces_writeback(self):
        cache = make_cache()
        writebacks = []
        cache.access(0, True)
        cache.access(16, False)
        cache.access(32, False, writebacks)
        assert writebacks == [0]
        assert cache.writeback_count == 1

    def test_clean_victim_no_writeback(self):
        cache = make_cache()
        writebacks = []
        cache.access(0, False)
        cache.access(16, False)
        cache.access(32, False, writebacks)
        assert writebacks == []
        assert cache.writeback_count == 0

    def test_write_hit_marks_dirty(self):
        cache = make_cache()
        cache.access(0, False)
        cache.access(0, True)
        writebacks = []
        cache.access(16, False)
        cache.access(32, False, writebacks)
        assert writebacks == [0]

    def test_invalidate_returns_dirtiness(self):
        cache = make_cache()
        cache.access(0, True)
        cache.access(1, False)
        assert cache.invalidate(0) is True
        assert cache.invalidate(1) is False
        assert cache.invalidate(99) is False
        assert not cache.probe(0)

    def test_probe_does_not_touch_lru(self):
        cache = make_cache()
        cache.access(0, False)
        cache.access(16, False)
        cache.probe(0)  # must NOT refresh line 0
        cache.access(32, False)
        assert not cache.probe(0)

    def test_reset_counters(self):
        cache = make_cache()
        cache.access(0, False)
        cache.reset_counters()
        assert cache.hits == cache.misses == cache.writeback_count == 0
        assert cache.probe(0)  # contents survive a counter reset

    def test_capacity_bound(self):
        cache = make_cache(size=1024, line=32, ways=2)
        for line in range(500):
            cache.access(line, False)
        assert cache.resident_lines <= cache.geometry.n_lines

    def test_full_associativity_path(self):
        cache = make_cache(size=128, line=32, ways=4)  # single set
        for line in range(4):
            cache.access(line, False)
        assert all(cache.probe(line) for line in range(4))
        cache.access(4, False)
        assert not cache.probe(0)


@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
        max_size=300,
    ),
    ways=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_property_counter_conservation_and_capacity(accesses, ways):
    """hits + misses == accesses; residency never exceeds capacity."""
    cache = SetAssocCache(CacheGeometry(512, 32, ways))
    for line, is_write in accesses:
        cache.access(line, is_write)
    assert cache.hits + cache.misses == len(accesses)
    assert cache.resident_lines <= cache.geometry.n_lines
    assert cache.writeback_count <= cache.evictions


@given(accesses=st.lists(st.integers(min_value=0, max_value=63), max_size=200))
@settings(max_examples=60, deadline=None)
def test_property_lru_matches_stack_model(accesses):
    """A fully-associative cache must behave exactly like an LRU stack."""
    n_lines = 8
    cache = SetAssocCache(CacheGeometry(n_lines * 32, 32, n_lines))
    stack: list[int] = []
    for line in accesses:
        expect_hit = line in stack
        assert cache.access(line, False) == expect_hit
        if expect_hit:
            stack.remove(line)
        elif len(stack) == n_lines:
            stack.pop(0)
        stack.append(line)
    assert cache.contents() == set(stack)
