"""Tests for the data-TLB model and its hierarchy integration."""

import numpy as np
import pytest

from repro.memsim.cache import CacheGeometry
from repro.memsim.events import KIND_READ, AccessBatch
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.timing import TimingSpec
from repro.memsim.tlb import PAGE_BYTES, PAGE_SHIFT, Tlb


class TestTlb:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(0)

    def test_cold_miss_then_hit(self):
        tlb = Tlb(4)
        assert tlb.access(1) is False
        assert tlb.access(1) is True
        assert tlb.misses == 1
        assert tlb.hits == 1

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)  # refresh page 1
        tlb.access(3)  # evicts page 2
        assert tlb.access(1) is True
        assert tlb.access(2) is False

    def test_capacity_bound(self):
        tlb = Tlb(8)
        for page in range(100):
            tlb.access(page)
        assert tlb.resident == 8

    def test_page_geometry(self):
        assert PAGE_BYTES == 16 << 10
        # 16 KB page = 512 granules of 32 bytes.
        assert 1 << PAGE_SHIFT == PAGE_BYTES // 32


class TestHierarchyIntegration:
    def _hierarchy(self, tlb_entries=4):
        return MemoryHierarchy(
            CacheGeometry(32 << 10, 32, 2),
            CacheGeometry(1 << 20, 128, 2),
            TimingSpec(300.0, 1.2, 10.0, 1, 0.4, 0.2),
            tlb_entries=tlb_entries,
        )

    def test_tlb_misses_counted(self):
        hierarchy = self._hierarchy()
        page_granules = 1 << PAGE_SHIFT
        lines = np.array([0, page_granules, 2 * page_granules])
        hierarchy.process(AccessBatch(KIND_READ, lines, np.ones_like(lines)))
        assert hierarchy.total.tlb_misses == 3

    def test_same_page_costs_one_miss(self):
        hierarchy = self._hierarchy()
        lines = np.arange(100)  # all within the first 16 KB page
        hierarchy.process(AccessBatch(KIND_READ, lines, np.ones_like(lines)))
        assert hierarchy.total.tlb_misses == 1

    def test_page_guard_tracks_across_batches(self):
        hierarchy = self._hierarchy()
        lines = np.array([0])
        hierarchy.process(AccessBatch(KIND_READ, lines, np.array([1])))
        hierarchy.process(AccessBatch(KIND_READ, lines, np.array([1])))
        # Second batch stays on the same page: guard avoids re-counting,
        # and even without the guard it would be a TLB hit.
        assert hierarchy.total.tlb_misses == 1

    def test_paper_claim_tlb_negligible_for_codec(self):
        """Frame-sized working sets under blocked access keep the TLB quiet."""
        from repro.codec import CodecConfig, VopEncoder
        from repro.trace import TraceRecorder
        from repro.video import SceneSpec, SyntheticScene

        hierarchy = self._hierarchy(tlb_entries=64)
        recorder = TraceRecorder([hierarchy])
        scene = SyntheticScene(SceneSpec.default(96, 64))
        frames = [scene.frame(i) for i in range(3)]
        VopEncoder(CodecConfig(96, 64, qp=8, gop_size=4, m_distance=1), recorder).encode_sequence(frames)
        miss_rate = hierarchy.total.tlb_misses / hierarchy.total.memory_accesses
        assert miss_rate < 0.001  # "negligible", as the paper reports
