"""Differential tests: the vectorized engine vs the list-based oracle.

Every test drives :class:`~repro.memsim.fastpath.FastMemoryHierarchy` and
:class:`~repro.memsim.hierarchy.MemoryHierarchy` with the same batch
stream and requires **bit-identical** counters -- hits, misses, writebacks
at both levels, prefetch outcomes, TLB misses, and the derived timing --
plus identical resident contents, under page-scatter indexing, inclusion
back-invalidation, and mixed read/write/prefetch traffic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import CacheGeometry, SetAssocCache
from repro.memsim.events import KIND_PREFETCH, KIND_READ, KIND_WRITE, AccessBatch
from repro.memsim.fastpath import FastMemoryHierarchy, engine_class, kernel_available
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.timing import TimingSpec

pytestmark = pytest.mark.skipif(
    not kernel_available(), reason="no C compiler to build the fast-path kernel"
)

COUNTER_FIELDS = [
    "graduated_loads",
    "graduated_stores",
    "l1_hits",
    "l1_misses",
    "l1_writebacks",
    "l2_hits",
    "l2_misses",
    "l2_writebacks",
    "prefetch_issued",
    "prefetch_l1_hits",
    "prefetch_l1_misses",
    "prefetch_l2_misses",
    "tlb_misses",
    "alu_ops",
]


def make_timing(**overrides):
    params = dict(
        clock_mhz=300.0,
        ipc=1.2,
        l2_hit_latency_cycles=10.0,
        mshr=4,
        hide_l2=0.6,
        hide_dram=0.3,
    )
    params.update(overrides)
    return TimingSpec(**params)


def make_pair(l1_kb=1, l2_kb=4, l1_ways=2, l2_ways=2, page_scatter=False,
              tlb_entries=4):
    args = (
        CacheGeometry(l1_kb << 10, 32, l1_ways),
        CacheGeometry(l2_kb << 10, 128, l2_ways),
        make_timing(),
    )
    kwargs = dict(page_scatter=page_scatter, tlb_entries=tlb_entries)
    return MemoryHierarchy(*args, **kwargs), FastMemoryHierarchy(*args, **kwargs)


def assert_counters_equal(reference, fast, scope="total"):
    ref_counters = getattr(reference, scope) if scope == "total" else reference
    fast_counters = getattr(fast, scope) if scope == "total" else fast
    for field_name in COUNTER_FIELDS:
        assert getattr(fast_counters, field_name) == getattr(
            ref_counters, field_name
        ), field_name
    assert fast_counters.clock.compute_cycles == ref_counters.clock.compute_cycles
    assert fast_counters.clock.l1_stall_cycles == ref_counters.clock.l1_stall_cycles
    assert fast_counters.clock.dram_stall_cycles == ref_counters.clock.dram_stall_cycles


def assert_state_equal(reference, fast):
    assert fast.l1_contents() == reference.l1_contents()
    assert fast.l2_contents() == reference.l2_contents()
    assert fast.check_inclusion() and reference.check_inclusion()
    assert fast.tlb.misses == reference.tlb.misses
    assert fast.tlb.hits == reference.tlb.hits
    assert fast.tlb.contents() == reference.tlb.contents()


def run_both(reference, fast, batches):
    for batch in batches:
        reference.process(batch)
        fast.process(batch)
    assert_counters_equal(reference, fast)
    assert_state_equal(reference, fast)
    assert set(fast.phases) == set(reference.phases)
    for phase in reference.phases:
        assert_counters_equal(reference.phases[phase], fast.phases[phase], scope="")


def random_batches(rng, n_batches, max_line, max_events=200, kinds=(0, 1, 2)):
    batches = []
    for _ in range(n_batches):
        kind = int(rng.choice(kinds))
        size = int(rng.integers(1, max_events))
        if rng.random() < 0.5:
            # Spatially local stream with runs, like codec kernels emit.
            start = int(rng.integers(0, max_line))
            steps = rng.integers(-2, 3, size=size)
            lines = np.abs(start + np.cumsum(steps)) % max_line
        else:
            lines = rng.integers(0, max_line, size=size)
        counts = rng.integers(1, 8, size=size)
        phase = str(rng.choice(["me", "dct", "other"]))
        batches.append(
            AccessBatch(kind, lines, counts, phase=phase, alu_ops=int(rng.integers(0, 50)))
        )
    return batches


class TestDifferentialRandom:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_traffic(self, seed):
        rng = np.random.default_rng(seed)
        reference, fast = make_pair()
        run_both(reference, fast, random_batches(rng, 30, 4096))

    @pytest.mark.parametrize("seed", range(4))
    def test_page_scatter_and_tiny_tlb(self, seed):
        """Physically-scattered L2 indexing and a 4-entry TLB stress the
        paths that diverge most easily (index hashing, page-transition
        dedup)."""
        rng = np.random.default_rng(100 + seed)
        reference, fast = make_pair(page_scatter=True, tlb_entries=4)
        run_both(reference, fast, random_batches(rng, 30, 1 << 16))

    @pytest.mark.parametrize("seed", range(4))
    def test_inclusion_churn(self, seed):
        """A 2x-L1-sized single-way L2 forces constant back-invalidation."""
        rng = np.random.default_rng(200 + seed)
        args = (
            CacheGeometry(1 << 10, 32, 2),
            CacheGeometry(2 << 10, 128, 1),
            make_timing(),
        )
        reference = MemoryHierarchy(*args)
        fast = FastMemoryHierarchy(*args)
        run_both(reference, fast, random_batches(rng, 40, 512))

    def test_write_heavy_dirty_traffic(self, rng):
        reference, fast = make_pair(l1_kb=1, l2_kb=2)
        run_both(
            reference, fast, random_batches(rng, 50, 1024, kinds=(1, 1, 1, 0))
        )

    def test_prefetch_heavy_traffic(self, rng):
        reference, fast = make_pair(l1_kb=1, l2_kb=2)
        run_both(
            reference, fast, random_batches(rng, 50, 1024, kinds=(2, 2, 0, 1))
        )

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([KIND_READ, KIND_WRITE, KIND_PREFETCH]),
                st.lists(st.integers(min_value=0, max_value=2047), min_size=1,
                         max_size=60),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_streams(self, stream):
        reference, fast = make_pair(l1_kb=1, l2_kb=2, page_scatter=True)
        batches = [
            AccessBatch(kind, np.array(lines), np.ones(len(lines), dtype=np.int64))
            for kind, lines in stream
        ]
        run_both(reference, fast, batches)


class TestDifferentialAgainstCacheModel:
    """The fast engine must also match the composed SetAssocCache oracle on
    write-free streams (mirrors the existing hierarchy differential)."""

    @given(
        st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=400)
    )
    @settings(max_examples=40, deadline=None)
    def test_read_stream_differential(self, raw_lines):
        l1_geom = CacheGeometry(1 << 10, 32, 2)
        l2_geom = CacheGeometry(4 << 10, 128, 2)
        fast = FastMemoryHierarchy(l1_geom, l2_geom, make_timing())
        lines = np.array(raw_lines)
        fast.process(AccessBatch(KIND_READ, lines, np.ones_like(lines)))

        ref_l1 = SetAssocCache(l1_geom)
        ref_l2 = SetAssocCache(l2_geom)
        for granule in raw_lines:
            if ref_l1.access(granule, False):
                continue
            if not ref_l2.access(granule >> 2, False) and ref_l2.last_victim is not None:
                base = ref_l2.last_victim << 2
                for covered in range(base, base + 4):
                    ref_l1.invalidate(covered)
        assert fast.total.l1_misses == ref_l1.misses
        assert fast.total.l2_misses == ref_l2.misses


class TestBatchSlicingInvariance:
    def test_split_batches_match_one_batch(self, rng):
        """Counters must not depend on how a stream is chopped into batches
        (the windowed fast path crosses batch boundaries statefully)."""
        lines = rng.integers(0, 2048, size=1200)
        _, fast_one = make_pair()
        _, fast_many = make_pair()
        fast_one.process(AccessBatch(KIND_READ, lines, np.ones_like(lines)))
        for part in np.array_split(lines, 13):
            if part.size:
                fast_many.process(AccessBatch(KIND_READ, part, np.ones_like(part)))
        assert fast_many.total.l1_misses == fast_one.total.l1_misses
        assert fast_many.total.l2_misses == fast_one.total.l2_misses
        assert fast_many.total.tlb_misses == fast_one.total.tlb_misses

    def test_collapsed_batches_are_equivalent(self, rng):
        """The run-collapsing front-end must not change any counter."""
        raw = np.repeat(rng.integers(0, 256, size=300), rng.integers(1, 4, size=300))
        counts = np.ones_like(raw)
        batch = AccessBatch(KIND_READ, raw, counts)
        assert batch.collapsed().n_events < batch.n_events
        assert batch.collapsed().n_accesses == batch.n_accesses
        reference, fast = make_pair()
        reference.process(batch)
        fast.process(batch)
        assert_counters_equal(reference, fast)

    def test_collapsed_noop_returns_self(self):
        batch = AccessBatch(KIND_READ, np.array([1, 2, 3]), np.array([1, 1, 1]))
        assert batch.collapsed() is batch


class TestEngineSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert engine_class() is FastMemoryHierarchy

    def test_reference_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert engine_class() is MemoryHierarchy

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "simd")
        with pytest.raises(ValueError):
            engine_class()


class TestScaledInvariants:
    """Satellite: scaled() must preserve the conservation identities."""

    @pytest.mark.parametrize("factor", [1.0, 2.0, 3.7, 0.4, 11.0 / 3.0])
    def test_identities_survive_rounding(self, factor, rng):
        reference, fast = make_pair()
        run_both(reference, fast, random_batches(rng, 20, 2048))
        for hier in (reference, fast):
            scaled = hier.total.scaled(factor)
            assert scaled.l1_hits + scaled.l1_misses == scaled.memory_accesses
            assert scaled.l2_hits + scaled.l2_misses == scaled.l1_misses
            assert (
                scaled.prefetch_l1_hits + scaled.prefetch_l1_misses
                == scaled.prefetch_issued
            )
