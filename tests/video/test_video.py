"""Tests for YUV frames, synthesis, and quality metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import (
    SceneSpec,
    SyntheticScene,
    VideoObjectSpec,
    YuvFrame,
    downsample_plane,
    mse,
    psnr,
    upsample_plane,
)
from repro.video.quality import frame_psnr


class TestYuvFrame:
    def test_blank_construction(self):
        frame = YuvFrame.blank(64, 48)
        assert frame.width == 64
        assert frame.height == 48
        assert frame.u.shape == (24, 32)
        assert (frame.y == 128).all()

    def test_mb_geometry(self):
        frame = YuvFrame.blank(96, 64)
        assert frame.mb_cols == 6
        assert frame.mb_rows == 4
        assert frame.n_bytes == 96 * 64 * 3 // 2

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            YuvFrame.blank(60, 48)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            YuvFrame(
                np.zeros((16, 16), dtype=np.float32),
                np.zeros((8, 8), dtype=np.uint8),
                np.zeros((8, 8), dtype=np.uint8),
            )

    def test_rejects_wrong_chroma_shape(self):
        with pytest.raises(ValueError):
            YuvFrame(
                np.zeros((16, 16), dtype=np.uint8),
                np.zeros((16, 16), dtype=np.uint8),
                np.zeros((8, 8), dtype=np.uint8),
            )

    def test_copy_is_independent(self):
        frame = YuvFrame.blank(16, 16)
        duplicate = frame.copy()
        duplicate.y[0, 0] = 7
        assert frame.y[0, 0] == 128

    def test_planes_iteration(self):
        names = [name for name, _ in YuvFrame.blank(16, 16).planes()]
        assert names == ["y", "u", "v"]


class TestResampling:
    def test_downsample_averages(self):
        plane = np.array([[0, 4], [8, 12]], dtype=np.uint8)
        assert downsample_plane(plane)[0, 0] == 6  # (0+4+8+12+2)//4

    def test_downsample_rejects_odd(self):
        with pytest.raises(ValueError):
            downsample_plane(np.zeros((3, 4), dtype=np.uint8))

    def test_upsample_shape_and_content(self):
        plane = np.array([[1, 2]], dtype=np.uint8)
        up = upsample_plane(plane)
        assert up.shape == (2, 4)
        assert up[1, 1] == 1
        assert up[0, 2] == 2

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_down_up_bounded_error(self, seed):
        rng = np.random.default_rng(seed)
        plane = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        smooth = downsample_plane(plane)
        restored = upsample_plane(smooth)
        assert restored.shape == plane.shape


class TestQuality:
    def test_mse_identical_is_zero(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        assert mse(plane, plane) == 0.0

    def test_psnr_identical_is_inf(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        assert math.isinf(psnr(plane, plane))

    def test_psnr_known_value(self):
        a = np.zeros((8, 8), dtype=np.uint8)
        b = np.full((8, 8), 16, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 256))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_frame_psnr_uses_luma(self):
        a = YuvFrame.blank(16, 16)
        b = a.copy()
        b.u[:] = 0  # chroma-only difference: luma PSNR unaffected
        assert math.isinf(frame_psnr(a, b))


class TestSynthesis:
    def test_deterministic(self):
        spec = SceneSpec.default(96, 64, n_objects=2)
        a = SyntheticScene(spec).frame(5)
        b = SyntheticScene(spec).frame(5)
        assert np.array_equal(a.y, b.y)

    def test_frames_change_over_time(self):
        scene = SyntheticScene(SceneSpec.default(96, 64, n_objects=1))
        assert not np.array_equal(scene.frame(0).y, scene.frame(5).y)

    def test_object_motion_moves_mask(self):
        scene = SyntheticScene(SceneSpec.default(96, 64, n_objects=1))
        _, masks0 = scene.frame_with_masks(0)
        _, masks8 = scene.frame_with_masks(8)
        center0 = np.argwhere(masks0[0]).mean(axis=0)
        center8 = np.argwhere(masks8[0]).mean(axis=0)
        assert np.linalg.norm(center8 - center0) > 2.0

    def test_mask_count_matches_objects(self):
        scene = SyntheticScene(SceneSpec.default(96, 64, n_objects=3))
        _, masks = scene.frame_with_masks(0)
        assert len(masks) == 3

    def test_object_region_has_object_chroma(self):
        spec = SceneSpec.default(96, 64, n_objects=1)
        scene = SyntheticScene(spec)
        frame, masks = scene.frame_with_masks(0)
        mask_c = masks[0][::2, ::2] != 0
        assert mask_c.any()
        assert np.all(frame.u[mask_c] == spec.objects[0].chroma_u)

    def test_rejects_misaligned_scene(self):
        with pytest.raises(ValueError):
            SceneSpec(width=100, height=64)

    def test_frames_iterator(self):
        scene = SyntheticScene(SceneSpec.default(64, 48))
        frames = list(scene.frames(3))
        assert len(frames) == 3
        assert frames[0].width == 64

    def test_object_path(self):
        obj = VideoObjectSpec(center_x=10, center_y=10, radius_x=5, radius_y=5,
                              velocity_x=2.0, velocity_y=0.0, wobble=0.0)
        assert obj.center_at(5) == (20.0, 10.0)

    def test_texture_is_band_limited(self):
        """Backgrounds should have smooth local structure, not white noise:
        neighbouring pixels correlate."""
        scene = SyntheticScene(SceneSpec.default(128, 64))
        luma = scene.frame(0).y.astype(np.float64)
        horizontal_diff = np.abs(np.diff(luma, axis=1)).mean()
        assert horizontal_diff < 12.0
