"""Fault-study acceptance: cells, sweeps, backends, chaos drill, CLI.

The acceptance contract of ``python -m repro faultstudy``: published
tables are byte-identical across repeat runs, backends, ``--jobs``
counts, ``--resume``, and a chaos kill-and-resume drill -- and with the
fault plane disabled, the data plane's results are byte-identical to
the plain (pre-fault-plane) ``repro serve`` path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.runner.chaos import POINT_WORKER_CELL, PROFILES, ChaosInjector
from repro.obs.schema import validate_faultstudy, validate_file
from repro.service.cli import faultstudy_main
from repro.service.config import DEFAULT_CONFIG
from repro.service.faults import FaultConfig, FaultPlan
from repro.service.recovery import POLICIES, POLICY_LADDER, simulate_recovery
from repro.service.scheduler import schedule_fleet
from repro.service.study import (
    DEFAULT_INTENSITIES,
    FAULT_DEFAULT_N,
    FAULT_SMOKE_N,
    SMOKE_INTENSITIES,
    FaultCell,
    run_fault_cell,
    run_fault_sweep,
    summarize_faults,
)
from repro.service.backends import execute_schedule
from repro.service.session import build_fleet

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


def read_artifacts(run_dir: Path) -> dict[str, bytes]:
    """Deterministic artifact bytes (telemetry + attempt counters excluded)."""
    artifacts = {}
    for path in sorted(run_dir.rglob("*")):
        if not path.is_file() or path.suffix == ".attempt":
            continue
        relative = path.relative_to(run_dir)
        if relative.parts[0] == "telemetry":
            continue
        artifacts[str(relative)] = path.read_bytes()
    return artifacts


class TestRunFaultCell:
    def test_deterministic_record(self):
        cell = FaultCell(16, 4, 0.6, "full")
        record_a, _ = run_fault_cell(cell)
        record_b, _ = run_fault_cell(cell)
        assert record_a == record_b

    def test_record_accounting(self):
        record, wall = run_fault_cell(FaultCell(24, 4, 0.6, "retry"))
        outcomes = record["outcomes"]
        assert outcomes["offered"] == 24
        delivered = (
            outcomes["served"] + outcomes["served_retry"]
            + outcomes["degraded"]
        )
        assert (
            delivered + outcomes["shed"] + outcomes["quarantined"]
            == outcomes["offered"]
        )
        assert sum(outcomes["quarantine_reasons"].values()) == outcomes[
            "quarantined"
        ]
        recovery = record["recovery"]
        assert recovery["availability"] == pytest.approx(
            delivered / outcomes["offered"]
        )
        assert recovery["retry_amplification"] >= 1.0
        assert record["latency_vms"]["observations"] == delivered
        assert sum(record["quality"]["decode_outcomes"].values()) == delivered
        assert len(record["fleet_digest"]) == 64
        assert wall["cell_id"] == record["cell_id"] == "n24+s4+i60+retry"
        assert wall["recovery_wall_s"] >= 0.0

    def test_zero_intensity_matches_plain_serve_results(self):
        """ISSUE acceptance: faults disabled => the data plane's results
        are byte-identical to the pre-fault-plane execution path."""
        config = DEFAULT_CONFIG
        specs = build_fleet(4, 16, config)
        schedule = schedule_fleet(specs, config)
        plain = execute_schedule(specs, schedule, config)
        plan = FaultPlan(4, FaultConfig(intensity=0.0))
        report = simulate_recovery(
            specs, schedule, plan, POLICIES["full"], config
        )
        gated = execute_schedule(specs, schedule, config, recovery=report)
        assert gated == plain

    def test_policy_ladder_differentiates(self):
        availability = {}
        for policy in ("none", "retry"):
            record, _ = run_fault_cell(FaultCell(24, 4, 0.6, policy))
            availability[policy] = record["recovery"]["availability"]
        assert availability["retry"] > availability["none"]

    def test_small_cells_embed_per_session_table(self):
        record, _ = run_fault_cell(FaultCell(16, 4, 0.6, "retry"))
        sessions = record["sessions"]
        assert len(sessions) == 16
        for session in sessions:
            if session["outcome"] == "served_retry":
                assert session["attempts"] > 1
            if session["outcome"] == "quarantined":
                assert session["quarantine_reason"] is not None

    def test_large_cells_omit_per_session_table(self):
        record, _ = run_fault_cell(FaultCell(65, 4, 0.0, "none"))
        assert "sessions" not in record

    def test_bad_cells_rejected(self):
        with pytest.raises(ValueError):
            FaultCell(16, 4, 0.6, "nope")
        with pytest.raises(ValueError):
            FaultCell(16, 4, 1.5, "none")


class TestRunFaultSweep:
    NS = (12,)
    SEEDS = (4,)
    INTENSITIES = (0.0, 0.6)
    POLICIES = ("none", "full")

    def sweep(self, run_dir, **kw):
        return run_fault_sweep(
            run_dir, ns=self.NS, seeds=self.SEEDS,
            intensities=self.INTENSITIES, policies=self.POLICIES, **kw
        )

    def test_repeat_runs_byte_identical(self, tmp_path):
        self.sweep(tmp_path / "a")
        self.sweep(tmp_path / "b")
        assert read_artifacts(tmp_path / "a") == read_artifacts(tmp_path / "b")

    def test_jobs_and_backend_invariance(self, tmp_path):
        self.sweep(tmp_path / "serial", backend="serial", jobs=1)
        self.sweep(tmp_path / "async4", backend="asyncio", jobs=4)
        assert read_artifacts(tmp_path / "async4") == read_artifacts(
            tmp_path / "serial"
        )

    def test_resume_reuses_published_cells(self, tmp_path):
        first = self.sweep(tmp_path / "run")
        assert first["skipped_cells"] == 0
        before = read_artifacts(tmp_path / "run")
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == 4
        assert read_artifacts(tmp_path / "run") == before

    def test_corrupt_cell_recomputed_on_resume(self, tmp_path):
        self.sweep(tmp_path / "run")
        victim = tmp_path / "run" / "cells" / "n12+s4+i60+full.json"
        reference = victim.read_bytes()
        victim.write_bytes(reference[: len(reference) // 2])
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == 3
        assert victim.read_bytes() == reference

    def test_summary_validates_against_schema(self, tmp_path):
        self.sweep(tmp_path / "run")
        summary_path = tmp_path / "run" / "summary.json"
        assert validate_file(summary_path) == []
        summary = json.loads(summary_path.read_text())
        assert summary["schema"] == "repro-faultstudy"
        broken = json.loads(summary_path.read_text())
        broken["rows"][0]["outcomes"]["served"] += 1
        assert any(
            "conservation" in problem
            for problem in validate_faultstudy(broken)
        )

    def test_summary_names_missing_cells(self, tmp_path):
        self.sweep(tmp_path / "run")
        summary = summarize_faults(
            tmp_path / "run", ns=self.NS, seeds=self.SEEDS,
            intensities=(0.0, 0.6, 0.9), policies=self.POLICIES,
        )
        assert summary["missing_cells"] == [
            "n12+s4+i90+full", "n12+s4+i90+none"
        ]

    def test_recovery_wall_stays_out_of_the_record(self, tmp_path):
        self.sweep(tmp_path / "run")
        cell = json.loads(
            (tmp_path / "run" / "cells" / "n12+s4+i60+full.json").read_text()
        )
        assert "recovery_wall_s" not in json.dumps(cell)
        wall = json.loads(
            (tmp_path / "run" / "telemetry" / "wall.json").read_text()
        )
        assert validate_file(
            tmp_path / "run" / "telemetry" / "wall.json"
        ) == []
        assert all("recovery_wall_s" in c for c in wall["cells"])


def _seed_killing_first_attempt(key: str) -> int:
    """A chaos seed that kills attempt 1 at ``key`` but spares attempt 2."""
    for seed in range(1, 500):
        injector = ChaosInjector(seed, PROFILES["kills"])
        if (
            injector.fault_at(POINT_WORKER_CELL, f"{key}/a1") == "kill"
            and injector.fault_at(POINT_WORKER_CELL, f"{key}/a2") is None
        ):
            return seed
    raise AssertionError("no suitable chaos seed found")


class TestFaultstudyChaosDrill:
    """Kill-and-resume: a SIGKILLed fault study finishes bit-identically."""

    N = 12

    def faultstudy(self, tmp_path, run_id, *args, chaos=None, resume=False):
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        env.pop("REPRO_CHAOS", None)
        env.pop("REPRO_OBS", None)
        if chaos is not None:
            env["REPRO_CHAOS"] = chaos
        command = [
            sys.executable, "-m", "repro", "faultstudy",
            "--sessions", str(self.N), "--seed", "4",
            "--intensity", "0.6", "--policy", "retry",
            "--runs-dir", str(tmp_path),
        ]
        command += ["--resume", run_id] if resume else ["--run-id", run_id]
        return subprocess.run(
            command + list(args), env=env, capture_output=True, text=True,
            timeout=180,
        )

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        clean = self.faultstudy(tmp_path, "clean", "--verify-complete")
        assert clean.returncode == 0, clean.stderr

        key = f"faultstudy:n{self.N}+s4+i60+retry"
        chaos = f"{_seed_killing_first_attempt(key)}:kills"
        struck = self.faultstudy(tmp_path, "drill", chaos=chaos)
        assert struck.returncode != 0  # SIGKILLed mid-sweep

        for _ in range(6):
            finished = self.faultstudy(
                tmp_path, "drill", "--verify-complete", chaos=chaos,
                resume=True,
            )
            if finished.returncode == 0:
                break
        assert finished.returncode == 0, finished.stderr
        assert "verify-complete passed" in finished.stdout

        assert read_artifacts(tmp_path / "drill") == read_artifacts(
            tmp_path / "clean"
        )


class TestFaultstudyCli:
    def run(self, tmp_path, *args):
        return faultstudy_main(
            ["--runs-dir", str(tmp_path), "--backend", "serial",
             "--sessions", "12", "--intensity", "0", "0.6",
             "--policy", "none", "retry", *args]
        )

    def test_acceptance_twice_identical_and_jobs_invariant(
        self, tmp_path, capsys
    ):
        assert self.run(tmp_path, "--run-id", "a") == 0
        assert self.run(tmp_path, "--run-id", "b") == 0
        assert faultstudy_main(
            ["--runs-dir", str(tmp_path), "--sessions", "12",
             "--intensity", "0", "0.6", "--policy", "none", "retry",
             "--backend", "asyncio", "--jobs", "4", "--run-id", "c"]
        ) == 0
        a = read_artifacts(tmp_path / "a")
        assert read_artifacts(tmp_path / "b") == a
        assert read_artifacts(tmp_path / "c") == a
        output = capsys.readouterr().out
        assert "avail" in output and "MTTR" in output

    def test_verify_complete_passes_on_full_grid(self, tmp_path, capsys):
        assert self.run(tmp_path, "--run-id", "ok", "--verify-complete") == 0
        assert "verify-complete passed" in capsys.readouterr().out

    def test_resume_reuses_cells(self, tmp_path, capsys):
        assert self.run(tmp_path, "--run-id", "again") == 0
        assert self.run(tmp_path, "--resume", "again") == 0
        assert "4 reused" in capsys.readouterr().out

    def test_bad_arguments_exit_2(self, tmp_path):
        assert faultstudy_main(
            ["--runs-dir", str(tmp_path), "--jobs", "0"]
        ) == 2
        assert faultstudy_main(
            ["--runs-dir", str(tmp_path), "--sessions", "-3"]
        ) == 2
        assert faultstudy_main(
            ["--runs-dir", str(tmp_path), "--intensity", "1.5"]
        ) == 2

    def test_grid_constants(self):
        assert FAULT_DEFAULT_N == 64
        assert FAULT_SMOKE_N == 24
        assert DEFAULT_INTENSITIES == (0.0, 0.2, 0.4, 0.6)
        assert SMOKE_INTENSITIES == (0.0, 0.6)
        assert POLICY_LADDER == ("none", "retry", "retry_breaker", "full")
