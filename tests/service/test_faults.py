"""Fault-plan tests: determinism, draw semantics, and the corruption
model's contract with the real decoder.

The plan's whole claim is statelessness: any process computes the same
fault for the same ``(fleet_seed, session_id, attempt)`` without
coordination, and neighbouring draws are independent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultPlan,
    corrupt_stream,
)

HOT = FaultConfig(intensity=1.0)


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        assert not FaultConfig().enabled
        assert FaultConfig(intensity=0.1).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intensity": -0.1},
            {"intensity": 1.5},
            {"mix": (1.0, 1.0)},
            {"mix": (-1.0, 1.0, 1.0, 1.0, 1.0)},
            {"mix": (0.0, 0.0, 0.0, 0.0, 0.0)},
            {"stall_factor_range": (5.0, 2.0)},
            {"crash_fraction_range": (-0.5, 0.5)},
            {"blackout_fatal_packets": 0},
            {"blackout_fatal_packets": 99, "blackout_max_packets": 24},
            {"blackout_start_range": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_slow_stays_below_default_timeout(self):
        """The slow fault must model latency, not loss: its inflation
        range sits below the retry policies' timeout factor of 3."""
        config = FaultConfig()
        assert config.slow_factor_range[1] < 3.0


class TestFaultPlanDeterminism:
    @given(
        fleet_seed=st.integers(min_value=0, max_value=2**31),
        session_id=st.integers(min_value=0, max_value=10_000),
        attempt=st.integers(min_value=1, max_value=8),
        intensity=st.sampled_from([0.1, 0.5, 1.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_fault_is_pure_function_of_coordinates(
        self, fleet_seed, session_id, attempt, intensity
    ):
        config = FaultConfig(intensity=intensity)
        a = FaultPlan(fleet_seed, config).fault_for(session_id, attempt)
        b = FaultPlan(fleet_seed, config).fault_for(session_id, attempt)
        assert a == b

    def test_disabled_plan_never_faults(self):
        plan = FaultPlan(4, FaultConfig())
        assert not plan.enabled
        assert all(
            plan.fault_for(s, a) is None
            for s in range(64) for a in (1, 2, 3)
        )

    def test_full_intensity_always_faults(self):
        plan = FaultPlan(4, HOT)
        for session_id in range(64):
            fault = plan.fault_for(session_id, 1)
            assert fault is not None
            assert fault.kind in FAULT_KINDS

    def test_intensity_controls_fault_rate(self):
        lo = FaultPlan(4, FaultConfig(intensity=0.1))
        hi = FaultPlan(4, FaultConfig(intensity=0.7))
        n = 500
        lo_hits = sum(lo.fault_for(s, 1) is not None for s in range(n))
        hi_hits = sum(hi.fault_for(s, 1) is not None for s in range(n))
        assert lo_hits < hi_hits
        assert 0.03 * n < lo_hits < 0.2 * n
        assert 0.55 * n < hi_hits < 0.85 * n

    def test_attempts_draw_independent_outcomes(self):
        """Retries see fresh draws: across many sessions, attempt 2 must
        not mirror attempt 1 (transient-failure shape)."""
        plan = FaultPlan(4, FaultConfig(intensity=0.5))
        differs = sum(
            plan.fault_for(s, 1) != plan.fault_for(s, 2) for s in range(200)
        )
        assert differs > 50

    def test_all_kinds_reachable(self):
        plan = FaultPlan(4, HOT)
        kinds = {plan.fault_for(s, 1).kind for s in range(300)}
        assert kinds == set(FAULT_KINDS)

    def test_faults_for_session_enumerates_attempts(self):
        plan = FaultPlan(4, HOT)
        faults = plan.faults_for_session(7, max_attempts=4)
        assert [f.attempt for f in faults] == [1, 2, 3, 4]
        assert all(f.session_id == 7 for f in faults)


class TestFaultShapes:
    def plan(self):
        return FaultPlan(4, HOT)

    def collect(self, kind, count=40):
        found = []
        plan = self.plan()
        session = 0
        while len(found) < count and session < 5_000:
            fault = plan.fault_for(session, 1)
            if fault is not None and fault.kind == kind:
                found.append(fault)
            session += 1
        assert len(found) == count, f"only {len(found)} {kind} faults drawn"
        return found

    def test_crash_magnitudes_in_range(self):
        low, high = HOT.crash_fraction_range
        for fault in self.collect("crash"):
            assert low <= fault.magnitude <= high
            assert fault.fails_attempt

    def test_stall_magnitudes_in_range(self):
        low, high = HOT.stall_factor_range
        for fault in self.collect("stall"):
            assert low <= fault.magnitude <= high
            assert fault.fails_attempt

    def test_slow_faults_do_not_fail(self):
        low, high = HOT.slow_factor_range
        for fault in self.collect("slow"):
            assert low <= fault.magnitude <= high
            assert not fault.fails_attempt

    def test_blackout_windows_and_fatality(self):
        saw_fatal = saw_soft = False
        for fault in self.collect("blackout"):
            start, end = fault.window
            length = end - start
            assert 0 <= start < HOT.blackout_start_range
            assert 1 <= length <= HOT.blackout_max_packets
            fatal = length >= HOT.blackout_fatal_packets
            assert fault.fatal_blackout == fatal
            assert fault.fails_attempt == fatal
            saw_fatal |= fatal
            saw_soft |= not fatal
        assert saw_fatal and saw_soft

    def test_corrupt_always_fails(self):
        for fault in self.collect("corrupt"):
            assert fault.fails_attempt
            assert fault.magnitude == 0.0


class TestCorruptStream:
    def test_prefix_zeroed_suffix_kept(self):
        data = bytes(range(64))
        corrupted = corrupt_stream(data)
        assert len(corrupted) == len(data)
        assert corrupted[:32] == b"\x00" * 32
        assert corrupted[32:] == data[32:]

    def test_short_streams_fully_zeroed(self):
        assert corrupt_stream(b"\x01\x02") == b"\x00\x00"
        assert corrupt_stream(b"") == b""

    def test_real_decoder_rejects_corrupt_delivery(self):
        """The control plane models a corrupt delivery as *rejected*;
        hold the actual decoder to that, end to end, on a real encode."""
        from repro.codec import VopDecoder
        from repro.codec.errors import BitstreamError
        from repro.service.config import DEFAULT_CONFIG, MODE_FULL
        from repro.service.session import _encoded_stream

        encoded = _encoded_stream(0, MODE_FULL, DEFAULT_CONFIG)
        decoded = VopDecoder().decode_sequence(encoded, tolerate_errors=True)
        assert decoded is not None  # the clean stream decodes

        try:
            wrecked = VopDecoder().decode_sequence(
                corrupt_stream(encoded), tolerate_errors=True
            )
        except BitstreamError:
            wrecked = None
        assert wrecked is None or not wrecked.frames
