"""ABR-study acceptance: cells, sweeps, backends, chaos drill, CLI.

The acceptance contract of ``python -m repro abrstudy``: published
tables are byte-identical across repeat runs, backends, ``--jobs``
counts, ``--resume``, and a chaos kill-and-resume drill -- and at the
pinned seed, 5% mean loss, and the 3-step bandwidth-drop profile the
hybrid ABR policy beats the fixed-rendition baseline on both rebuffer
ratio and shed count at equal provisioned bandwidth.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.runner.chaos import POINT_WORKER_CELL, PROFILES, ChaosInjector
from repro.obs.schema import validate_abrstudy, validate_file
from repro.service.abr import ABR_POLICY_LADDER
from repro.service.abrstudy import (
    ABR_DEFAULT_N,
    ABR_SMOKE_N,
    DEFAULT_BANDWIDTHS_KBPS,
    SMOKE_BANDWIDTHS_KBPS,
    SMOKE_PROFILES,
    AbrCell,
    run_abr_cell,
    run_abr_sweep,
    summarize_abr,
)
from repro.service.cli import abrstudy_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


def read_artifacts(run_dir: Path) -> dict[str, bytes]:
    """Deterministic artifact bytes (telemetry + attempt counters excluded)."""
    artifacts = {}
    for path in sorted(run_dir.rglob("*")):
        if not path.is_file() or path.suffix == ".attempt":
            continue
        relative = path.relative_to(run_dir)
        if relative.parts[0] == "telemetry":
            continue
        artifacts[str(relative)] = path.read_bytes()
    return artifacts


class TestRunAbrCell:
    def test_deterministic_record(self):
        cell = AbrCell(16, 4, 36, "step_drop", "hybrid")
        record_a, _ = run_abr_cell(cell)
        record_b, _ = run_abr_cell(cell)
        assert record_a == record_b

    def test_record_accounting(self):
        record, wall = run_abr_cell(AbrCell(24, 4, 36, "step_drop", "hybrid"))
        outcomes = record["outcomes"]
        assert outcomes["offered"] == 24
        delivered = sum(
            outcomes[key]
            for key in ("served", "served_retry", "degraded",
                        "switched_down", "rebuffered")
        )
        assert (
            delivered + outcomes["shed"] + outcomes["quarantined"]
            == outcomes["offered"]
        )
        assert record["abr"]["delivered"] == delivered
        assert sum(record["quality"]["decode_outcomes"].values()) == delivered
        assert 0.0 <= record["abr"]["rebuffer_ratio"] <= 1.0
        assert len(record["fleet_digest"]) == 64
        assert [r["name"] for r in record["ladder"]] == [
            "r0_base", "r1_econ", "r2_main", "r3_high"
        ]
        assert wall["cell_id"] == record["cell_id"] \
            == "n24+s4+b36+step_drop+hybrid"
        assert wall["controller_wall_s"] >= 0.0

    def test_acceptance_hybrid_beats_fixed_on_the_drop_profile(self):
        """ISSUE acceptance: at the pinned seed, 5% mean loss, and the
        3-step bandwidth drop, hybrid achieves strictly lower rebuffer
        ratio AND strictly fewer shed sessions than fixed at equal
        provisioned bandwidth."""
        fixed, _ = run_abr_cell(
            AbrCell(ABR_DEFAULT_N, 4, 36, "step_drop", "fixed")
        )
        hybrid, _ = run_abr_cell(
            AbrCell(ABR_DEFAULT_N, 4, 36, "step_drop", "hybrid")
        )
        assert hybrid["abr"]["rebuffer_ratio"] \
            < fixed["abr"]["rebuffer_ratio"]
        assert hybrid["outcomes"]["shed"] < fixed["outcomes"]["shed"]

    def test_small_cells_embed_per_session_table(self):
        record, _ = run_abr_cell(AbrCell(16, 4, 36, "step_drop", "hybrid"))
        sessions = record["sessions"]
        assert len(sessions) == 16
        for session in sessions:
            if session["outcome"] in ("shed",):
                assert session["shed_reason"] is not None
            elif session["outcome"] == "quarantined":
                assert session["quarantine_reason"] is not None
            else:
                assert len(session["rungs"]) == 8
                assert session["decode_outcome"] in (
                    "decoded", "concealed", "rejected"
                )

    def test_large_cells_omit_per_session_table(self):
        record, _ = run_abr_cell(AbrCell(65, 4, 48, "steady", "fixed"))
        assert "sessions" not in record

    def test_custom_ladder_subset(self):
        from repro.codec.renditions import DEFAULT_LADDER

        record, _ = run_abr_cell(
            AbrCell(12, 4, 36, "steady", "hybrid"),
            ladder=DEFAULT_LADDER[:2],
        )
        assert [r["name"] for r in record["ladder"]] == ["r0_base", "r1_econ"]
        for session in record["sessions"]:
            for rung in session.get("rungs", []):
                assert rung in (0, 1)

    def test_bad_cells_rejected(self):
        with pytest.raises(ValueError):
            AbrCell(16, 4, 0, "steady", "hybrid")
        with pytest.raises(ValueError):
            AbrCell(16, 4, 36, "nope", "hybrid")
        with pytest.raises(ValueError):
            AbrCell(16, 4, 36, "steady", "nope")
        with pytest.raises(ValueError):
            run_abr_cell(AbrCell(12, 4, 36, "steady", "hybrid"), ladder=())


class TestRunAbrSweep:
    NS = (12,)
    SEEDS = (4,)
    BANDWIDTHS = (16, 36)
    PROFILES = ("step_drop",)
    POLICIES = ("fixed", "hybrid")

    def sweep(self, run_dir, **kw):
        return run_abr_sweep(
            run_dir, ns=self.NS, seeds=self.SEEDS,
            bandwidths=self.BANDWIDTHS, profiles=self.PROFILES,
            policies=self.POLICIES, **kw
        )

    def test_repeat_runs_byte_identical(self, tmp_path):
        self.sweep(tmp_path / "a")
        self.sweep(tmp_path / "b")
        assert read_artifacts(tmp_path / "a") == read_artifacts(tmp_path / "b")

    def test_jobs_and_backend_invariance(self, tmp_path):
        self.sweep(tmp_path / "serial", backend="serial", jobs=1)
        self.sweep(tmp_path / "async4", backend="asyncio", jobs=4)
        self.sweep(tmp_path / "fleet2", backend="fleet", jobs=2)
        reference = read_artifacts(tmp_path / "serial")
        assert read_artifacts(tmp_path / "async4") == reference
        assert read_artifacts(tmp_path / "fleet2") == reference

    def test_resume_reuses_published_cells(self, tmp_path):
        first = self.sweep(tmp_path / "run")
        assert first["skipped_cells"] == 0
        before = read_artifacts(tmp_path / "run")
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == 4
        assert read_artifacts(tmp_path / "run") == before

    def test_corrupt_cell_recomputed_on_resume(self, tmp_path):
        self.sweep(tmp_path / "run")
        victim = tmp_path / "run" / "cells" / "n12+s4+b36+step_drop+hybrid.json"
        reference = victim.read_bytes()
        victim.write_bytes(reference[: len(reference) // 2])
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == 3
        assert victim.read_bytes() == reference

    def test_summary_validates_against_schema(self, tmp_path):
        self.sweep(tmp_path / "run")
        summary_path = tmp_path / "run" / "summary.json"
        assert validate_file(summary_path) == []
        summary = json.loads(summary_path.read_text())
        assert summary["schema"] == "repro-abrstudy"
        broken = json.loads(summary_path.read_text())
        broken["rows"][0]["outcomes"]["served"] += 1
        assert any(
            "conservation" in problem
            for problem in validate_abrstudy(broken)
        )

    def test_summary_names_missing_cells(self, tmp_path):
        self.sweep(tmp_path / "run")
        summary = summarize_abr(
            tmp_path / "run", ns=self.NS, seeds=self.SEEDS,
            bandwidths=(16, 36, 48), profiles=self.PROFILES,
            policies=self.POLICIES,
        )
        assert summary["missing_cells"] == [
            "n12+s4+b48+step_drop+fixed", "n12+s4+b48+step_drop+hybrid"
        ]

    def test_controller_wall_stays_out_of_the_record(self, tmp_path):
        self.sweep(tmp_path / "run")
        cell = json.loads(
            (tmp_path / "run" / "cells"
             / "n12+s4+b36+step_drop+hybrid.json").read_text()
        )
        assert "controller_wall_s" not in json.dumps(cell)
        wall_path = tmp_path / "run" / "telemetry" / "wall.json"
        assert validate_file(wall_path) == []
        wall = json.loads(wall_path.read_text())
        assert all("controller_wall_s" in c for c in wall["cells"])


def _seed_killing_first_attempt(key: str) -> int:
    """A chaos seed that kills attempt 1 at ``key`` but spares attempt 2."""
    for seed in range(1, 500):
        injector = ChaosInjector(seed, PROFILES["kills"])
        if (
            injector.fault_at(POINT_WORKER_CELL, f"{key}/a1") == "kill"
            and injector.fault_at(POINT_WORKER_CELL, f"{key}/a2") is None
        ):
            return seed
    raise AssertionError("no suitable chaos seed found")


class TestAbrstudyChaosDrill:
    """Kill-and-resume: a SIGKILLed ABR study finishes bit-identically."""

    N = 12

    def abrstudy(self, tmp_path, run_id, *args, chaos=None, resume=False):
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        env.pop("REPRO_CHAOS", None)
        env.pop("REPRO_OBS", None)
        if chaos is not None:
            env["REPRO_CHAOS"] = chaos
        command = [
            sys.executable, "-m", "repro", "abrstudy",
            "--sessions", str(self.N), "--seed", "4",
            "--bandwidth", "36", "--profile", "step_drop",
            "--policy", "hybrid", "--runs-dir", str(tmp_path),
        ]
        command += ["--resume", run_id] if resume else ["--run-id", run_id]
        return subprocess.run(
            command + list(args), env=env, capture_output=True, text=True,
            timeout=180,
        )

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        clean = self.abrstudy(tmp_path, "clean", "--verify-complete")
        assert clean.returncode == 0, clean.stderr

        key = f"abrstudy:n{self.N}+s4+b36+step_drop+hybrid"
        chaos = f"{_seed_killing_first_attempt(key)}:kills"
        struck = self.abrstudy(tmp_path, "drill", chaos=chaos)
        assert struck.returncode != 0  # SIGKILLed mid-sweep

        for _ in range(6):
            finished = self.abrstudy(
                tmp_path, "drill", "--verify-complete", chaos=chaos,
                resume=True,
            )
            if finished.returncode == 0:
                break
        assert finished.returncode == 0, finished.stderr
        assert "verify-complete passed" in finished.stdout

        assert read_artifacts(tmp_path / "drill") == read_artifacts(
            tmp_path / "clean"
        )


class TestAbrstudyCli:
    def run(self, tmp_path, *args):
        return abrstudy_main(
            ["--runs-dir", str(tmp_path), "--backend", "serial",
             "--sessions", "12", "--bandwidth", "16", "36",
             "--profile", "step_drop", "--policy", "fixed", "hybrid", *args]
        )

    def test_acceptance_twice_identical_and_jobs_invariant(
        self, tmp_path, capsys
    ):
        assert self.run(tmp_path, "--run-id", "a") == 0
        assert self.run(tmp_path, "--run-id", "b") == 0
        assert abrstudy_main(
            ["--runs-dir", str(tmp_path), "--sessions", "12",
             "--bandwidth", "16", "36", "--profile", "step_drop",
             "--policy", "fixed", "hybrid",
             "--backend", "asyncio", "--jobs", "4", "--run-id", "c"]
        ) == 0
        a = read_artifacts(tmp_path / "a")
        assert read_artifacts(tmp_path / "b") == a
        assert read_artifacts(tmp_path / "c") == a
        output = capsys.readouterr().out
        assert "rebuf%" in output and "PSNR" in output

    def test_verify_complete_passes_on_full_grid(self, tmp_path, capsys):
        assert self.run(tmp_path, "--run-id", "ok", "--verify-complete") == 0
        assert "verify-complete passed" in capsys.readouterr().out

    def test_resume_reuses_cells(self, tmp_path, capsys):
        assert self.run(tmp_path, "--run-id", "again") == 0
        assert self.run(tmp_path, "--resume", "again") == 0
        assert "4 reused" in capsys.readouterr().out

    def test_grid_constants(self):
        assert ABR_DEFAULT_N == 64
        assert ABR_SMOKE_N == 24
        assert DEFAULT_BANDWIDTHS_KBPS == (8, 16, 24, 36, 48)
        assert SMOKE_BANDWIDTHS_KBPS == (16, 36)
        assert SMOKE_PROFILES == ("step_drop",)
        assert ABR_POLICY_LADDER == ("fixed", "buffer", "throughput", "hybrid")
