"""Recovery control-plane tests: backoff laws, breaker state machine,
and the simulated timeline's invariants.

Hypothesis pins the two properties the ISSUE names -- the backoff
schedule (deterministic per seed, monotone up to the cap, jitter
bounded) and the circuit breaker's state machine (closed -> open ->
half-open, never stuck open) -- and a property sweep holds the extended
conservation law across random fleets, intensities, and policies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.service.config import DEFAULT_CONFIG, MODE_DEGRADED, MODE_FULL
from repro.service.faults import FaultConfig, FaultPlan
from repro.service.recovery import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    POLICIES,
    POLICY_LADDER,
    QUARANTINE_REASONS,
    CircuitBreaker,
    RecoveryPolicy,
    backoff_base_vms,
    backoff_delay_vms,
    simulate_recovery,
)
from repro.service.scheduler import (
    OUTCOME_DEGRADED,
    OUTCOME_QUARANTINED,
    OUTCOME_SERVED,
    OUTCOME_SERVED_RETRY,
    schedule_fleet,
)
from repro.service.session import build_fleet

RETRY = POLICIES["retry"]
FULL = POLICIES["full"]


# ---------------------------------------------------------------------------
# Backoff schedule properties
# ---------------------------------------------------------------------------

policies_st = st.builds(
    RecoveryPolicy,
    name=st.just("prop"),
    timeout_factor=st.just(3.0),
    max_retries=st.integers(min_value=1, max_value=8),
    backoff_base_vms=st.sampled_from([1.0, 8.0, 20.0]),
    backoff_cap_vms=st.sampled_from([64.0, 200.0, 1000.0]),
    backoff_jitter=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
)


class TestBackoffProperties:
    @given(
        policy=policies_st,
        fleet_seed=st.integers(min_value=0, max_value=2**31),
        session_id=st.integers(min_value=0, max_value=10_000),
        retry_index=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_deterministic_per_seed(
        self, policy, fleet_seed, session_id, retry_index
    ):
        a = backoff_delay_vms(policy, fleet_seed, session_id, retry_index)
        b = backoff_delay_vms(policy, fleet_seed, session_id, retry_index)
        assert a == b

    @given(policy=policies_st)
    @settings(max_examples=50, deadline=None)
    def test_base_schedule_monotone_up_to_cap(self, policy):
        bases = [backoff_base_vms(policy, k) for k in range(1, 12)]
        assert bases == sorted(bases)
        assert all(b <= policy.backoff_cap_vms for b in bases)
        assert bases[0] == policy.backoff_base_vms
        # Doubling holds exactly until the cap clips it.
        for previous, current in zip(bases, bases[1:]):
            assert current == min(policy.backoff_cap_vms, previous * 2)

    @given(
        policy=policies_st,
        fleet_seed=st.integers(min_value=0, max_value=2**31),
        session_id=st.integers(min_value=0, max_value=10_000),
        retry_index=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_jitter_bounded(self, policy, fleet_seed, session_id, retry_index):
        base = backoff_base_vms(policy, retry_index)
        delay = backoff_delay_vms(policy, fleet_seed, session_id, retry_index)
        assert base <= delay <= base * (1.0 + policy.backoff_jitter) + 1e-6

    def test_retry_index_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_base_vms(RETRY, 0)

    def test_distinct_sessions_jitter_independently(self):
        delays = {
            backoff_delay_vms(RETRY, 4, session_id, 1)
            for session_id in range(50)
        }
        assert len(delays) > 10


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------

class BreakerMachine(RuleBasedStateMachine):
    """Drive a breaker with monotone virtual time and arbitrary
    success/failure sequences; the oracle is a shadow model of the spec:
    closed counts consecutive failures, open always yields to half-open
    after the cooldown (no stuck-open), half-open resolves on the next
    recorded outcome."""

    THRESHOLD = 3
    COOLDOWN = 50.0

    def __init__(self):
        super().__init__()
        self.breaker = CircuitBreaker(self.THRESHOLD, self.COOLDOWN, key="t")
        self.now = 0.0

    def _advance(self, dt: float) -> None:
        self.now = round(self.now + dt, 6)

    @rule(dt=st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
    def tick(self, dt):
        self._advance(dt)
        self.breaker.state_at(self.now)

    @rule(dt=st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    def fail(self, dt):
        self._advance(dt)
        before = self.breaker.state_at(self.now)
        self.breaker.record_failure(self.now)
        after = self.breaker.state
        if before == BREAKER_HALF_OPEN:
            assert after == BREAKER_OPEN  # failed probe re-opens
        elif before == BREAKER_CLOSED:
            assert after in (BREAKER_CLOSED, BREAKER_OPEN)

    @rule(dt=st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    def succeed(self, dt):
        self._advance(dt)
        self.breaker.record_success(self.now)
        assert self.breaker.state == BREAKER_CLOSED
        assert self.breaker.consecutive_failures == 0

    @invariant()
    def never_stuck_open(self):
        """An open breaker past its cooldown must report half-open."""
        state = self.breaker.state_at(self.now)
        if state == BREAKER_OPEN:
            assert self.now < self.breaker.opened_at + self.COOLDOWN

    @invariant()
    def transitions_are_time_ordered_and_legal(self):
        legal = {
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
            (BREAKER_OPEN, BREAKER_CLOSED),  # success during cooldown
        }
        times = [t for t, _, _ in self.breaker.transitions]
        assert times == sorted(times)
        for _, frm, to in self.breaker.transitions:
            assert (frm, to) in legal, (frm, to)


TestBreakerStateMachine = BreakerMachine.TestCase
TestBreakerStateMachine.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)


class TestBreakerDirect:
    def test_closed_to_open_to_half_open_to_closed(self):
        breaker = CircuitBreaker(2, 10.0)
        breaker.record_failure(1.0)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.state_at(11.0) == BREAKER_OPEN  # cooldown not elapsed
        assert breaker.state_at(12.0) == BREAKER_HALF_OPEN
        breaker.record_success(13.0)
        assert breaker.state == BREAKER_CLOSED
        assert [(f, t) for _, f, t in breaker.transitions] == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(1, 10.0)
        breaker.record_failure(0.0)
        assert breaker.state_at(10.0) == BREAKER_HALF_OPEN
        breaker.record_failure(11.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.state_at(20.9) == BREAKER_OPEN
        assert breaker.state_at(21.0) == BREAKER_HALF_OPEN

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 10.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0.0)


# ---------------------------------------------------------------------------
# Policy ladder validation
# ---------------------------------------------------------------------------

class TestPolicyLadder:
    def test_ladder_names_match_registry(self):
        assert set(POLICY_LADDER) == set(POLICIES)
        assert all(POLICIES[name].name == name for name in POLICY_LADDER)

    def test_ladder_is_monotonically_more_capable(self):
        none, retry, breaker, full = (POLICIES[n] for n in POLICY_LADDER)
        assert none.max_retries == 0 and none.timeout_factor is None
        assert retry.max_retries > 0 and retry.timeout_factor is not None
        assert breaker.breaker_threshold is not None
        assert full.quarantine_threshold is not None and full.brownout

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_factor": 1.0},
            {"max_retries": -1},
            {"backoff_base_vms": 0.0},
            {"backoff_base_vms": 10.0, "backoff_cap_vms": 5.0},
            {"backoff_jitter": 1.5},
            {"quarantine_threshold": 0},
            {"breaker_threshold": 0},
            {"breaker_cooldown_vms": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy("bad", **kwargs)


# ---------------------------------------------------------------------------
# simulate_recovery invariants
# ---------------------------------------------------------------------------

def simulate(n=32, seed=4, intensity=0.4, policy="full", config=DEFAULT_CONFIG):
    specs = build_fleet(seed, n, config)
    schedule = schedule_fleet(specs, config)
    plan = FaultPlan(seed, FaultConfig(intensity=intensity))
    report = simulate_recovery(specs, schedule, plan, POLICIES[policy], config)
    return specs, schedule, report


class TestSimulateRecovery:
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n=st.integers(min_value=0, max_value=48),
        intensity=st.sampled_from([0.0, 0.2, 0.6, 1.0]),
        policy=st.sampled_from(POLICY_LADDER),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_law(self, seed, n, intensity, policy):
        _, schedule, report = simulate(n, seed, intensity, policy)
        assert report.conserves(schedule)
        delivered = sum(
            report.outcomes[o]
            for o in (OUTCOME_SERVED, OUTCOME_SERVED_RETRY, OUTCOME_DEGRADED)
        )
        assert delivered == len(report.delivered_chains())
        assert 0.0 <= report.availability(schedule.offered) <= 1.0

    def test_deterministic(self):
        _, _, a = simulate()
        _, _, b = simulate()
        assert a.outcomes == b.outcomes
        assert a.fault_counts == b.fault_counts
        assert [c.channel_seed for c in a.chains] == [
            c.channel_seed for c in b.chains
        ]
        assert a.breaker_transitions == b.breaker_transitions

    def test_disabled_plan_is_fast_path_identity(self):
        """No faults: every admitted session succeeds on attempt 1 with
        its spec channel seed -- the repro-serve identity the <2%
        overhead guard rests on."""
        specs, schedule, report = simulate(intensity=0.0)
        by_id = {spec.session_id: spec for spec in specs}
        assert report.outcomes[OUTCOME_SERVED_RETRY] == 0
        assert report.outcomes[OUTCOME_QUARANTINED] == 0
        assert report.total_attempts == report.admitted
        for chain in report.chains:
            assert chain.n_attempts == 1
            assert chain.channel_seed == by_id[chain.session_id].channel_seed
            assert chain.blackout == ()

    def test_policy_none_never_retries(self):
        _, schedule, report = simulate(intensity=0.6, policy="none")
        assert report.retries == 0
        assert report.outcomes[OUTCOME_SERVED_RETRY] == 0
        assert all(c.n_attempts == 1 for c in report.chains)
        for chain in report.chains:
            if not chain.delivered:
                assert chain.quarantine_reason == "exhausted"

    def test_retry_recovers_sessions_none_loses(self):
        _, schedule, none = simulate(intensity=0.6, policy="none")
        _, _, retry = simulate(intensity=0.6, policy="retry")
        assert retry.availability(schedule.offered) > none.availability(
            schedule.offered
        )
        assert retry.outcomes[OUTCOME_SERVED_RETRY] > 0
        assert retry.mttr_vms > 0
        assert retry.retry_amplification > 1.0

    def test_retry_chains_use_fresh_channel_seeds(self):
        specs, _, report = simulate(intensity=0.6, policy="retry")
        by_id = {spec.session_id: spec for spec in specs}
        recovered = [
            c for c in report.chains if c.outcome == OUTCOME_SERVED_RETRY
        ]
        assert recovered
        for chain in recovered:
            assert chain.channel_seed != by_id[chain.session_id].channel_seed

    def test_timeout_cuts_stalls_short(self):
        _, _, report = simulate(n=64, intensity=1.0, policy="retry")
        labels = {
            record.fault
            for chain in report.chains
            for record in chain.attempts
        }
        assert "timeout" in labels   # stalls detected by the watchdog
        assert "stall" not in labels  # never left to run their course
        timeout = POLICIES["retry"].timeout_vms(DEFAULT_CONFIG, MODE_FULL)
        for chain in report.chains:
            for record in chain.attempts:
                if record.fault == "timeout" and record.mode == MODE_FULL:
                    assert record.end_vms - record.start_vms == pytest.approx(
                        timeout
                    )

    def test_breaker_and_brownout_engage_under_pressure(self):
        _, _, report = simulate(n=64, intensity=0.8, policy="full")
        assert report.breaker_transitions
        assert report.fastfails > 0 or report.brownouts > 0
        states = [
            to for trs in report.breaker_transitions.values()
            for _, _, to in trs
        ]
        assert BREAKER_OPEN in states and BREAKER_HALF_OPEN in states
        browned = [c for c in report.chains if c.browned_out]
        for chain in browned:
            assert chain.final_mode == MODE_DEGRADED

    def test_quarantine_reasons_accounted(self):
        _, _, report = simulate(n=64, intensity=0.8, policy="full")
        assert sum(report.quarantine_reasons.values()) == report.outcomes[
            OUTCOME_QUARANTINED
        ]
        assert set(report.quarantine_reasons) == set(QUARANTINE_REASONS)
        for chain in report.chains:
            if chain.outcome == OUTCOME_QUARANTINED:
                assert chain.quarantine_reason in QUARANTINE_REASONS
                assert chain.final_mode is None
                assert chain.channel_seed is None

    def test_attempt_timelines_are_ordered(self):
        _, _, report = simulate(n=48, intensity=0.6, policy="full")
        for chain in report.chains:
            assert [r.attempt for r in chain.attempts] == list(
                range(1, chain.n_attempts + 1)
            )
            for a, b in zip(chain.attempts, chain.attempts[1:]):
                assert a.end_vms <= b.start_vms  # backoff gap, never overlap
            for record in chain.attempts:
                assert record.start_vms <= record.end_vms

    def test_short_blackout_flows_to_delivery(self):
        _, _, report = simulate(n=128, intensity=1.0, policy="retry")
        windowed = [c for c in report.chains if c.delivered and c.blackout]
        assert windowed
        for chain in windowed:
            (start, end), = chain.blackout
            assert 0 <= start < end
