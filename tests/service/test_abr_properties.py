"""Property suite: ABR controller laws under randomized ladders/channels.

Hypothesis drives synthetic rendition ladders and piecewise-constant
capacity traces through ``simulate_abr_session`` and asserts the laws
the study rests on:

- **determinism** -- the same (ladder, trace, policy) inputs reproduce
  the identical session trace;
- **monotonicity** -- in steady state, more bandwidth never selects a
  lower rendition;
- **hysteresis** -- at most one switch per dwell window (consecutive
  switch timestamps are at least ``dwell_vms`` apart);
- **buffer conservation** -- fill - drain - rebuffer closes exactly:
  ``download == startup + played + rebuffer`` and ``fill == played +
  final_buffer``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.abr import (
    ABR_POLICIES,
    ABR_POLICY_LADDER,
    RenditionTrack,
    select_initial_rung,
    simulate_abr_session,
)
from repro.transport.bandwidth import BandwidthTrace

SEGMENT_VMS = 40.0


def build_tracks(rates, n_segments):
    return tuple(
        RenditionTrack(
            name=f"r{i}",
            nominal_kbps=rate,
            segment_bits=tuple([max(1, int(rate * SEGMENT_VMS))] * n_segments),
            segment_psnr_db=tuple([18.0 + 4.0 * i] * n_segments),
        )
        for i, rate in enumerate(rates)
    )


#: Strictly increasing ladder rates in kbit/s.
ladders = st.lists(
    st.floats(min_value=0.5, max_value=64.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=5, unique=True,
).map(lambda rates: tuple(sorted(round(r, 3) for r in rates)))

#: Piecewise-constant capacity: 1-6 segments over a 320 vms horizon.
capacity_traces = st.lists(
    st.floats(min_value=0.5, max_value=80.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=6,
).map(
    lambda levels: BandwidthTrace(tuple(
        (round(i * 320.0 / len(levels), 3), round(level, 3))
        for i, level in enumerate(levels)
    ))
)

policies = st.sampled_from(ABR_POLICY_LADDER)
segment_counts = st.integers(min_value=1, max_value=12)
loss_rates = st.sampled_from([0.0, 0.01, 0.05, 0.2])


@settings(max_examples=60, deadline=None)
@given(ladders, capacity_traces, policies, segment_counts, loss_rates)
def test_determinism(rates, trace, policy_name, n_segments, loss):
    tracks = build_tracks(rates, n_segments)
    policy = ABR_POLICIES[policy_name]
    a = simulate_abr_session(7, tracks, trace, policy, loss_rate=loss)
    b = simulate_abr_session(7, tracks, trace, policy, loss_rate=loss)
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    ladders,
    st.floats(min_value=0.5, max_value=80.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=40.0,
              allow_nan=False, allow_infinity=False),
    policies,
)
def test_monotonicity_in_steady_state(rates, capacity, extra, policy_name):
    """More bandwidth never selects a lower rendition: both the initial
    pick and the steady-state (final) rung are monotone in capacity."""
    tracks = build_tracks(rates, 10)
    policy = ABR_POLICIES[policy_name]
    lo, hi = capacity, capacity + extra
    assert select_initial_rung(tracks, lo, policy.safety) \
        <= select_initial_rung(tracks, hi, policy.safety)
    slow = simulate_abr_session(
        0, tracks, BandwidthTrace(((0.0, lo),)), policy
    )
    fast = simulate_abr_session(
        0, tracks, BandwidthTrace(((0.0, hi),)), policy
    )
    assert slow.rungs[-1] <= fast.rungs[-1]


@settings(max_examples=60, deadline=None)
@given(ladders, capacity_traces, policies, segment_counts, loss_rates)
def test_hysteresis_bound(rates, trace, policy_name, n_segments, loss):
    """At most one switch per dwell window."""
    tracks = build_tracks(rates, n_segments)
    policy = ABR_POLICIES[policy_name]
    result = simulate_abr_session(0, tracks, trace, policy, loss_rate=loss)
    assert len(result.switch_vms) == result.n_switches
    for earlier, later in zip(result.switch_vms, result.switch_vms[1:]):
        assert later - earlier >= policy.dwell_vms - 1e-6


@settings(max_examples=60, deadline=None)
@given(ladders, capacity_traces, policies, segment_counts, loss_rates,
       st.booleans())
def test_buffer_conservation(rates, trace, policy_name, n_segments, loss,
                             rescue):
    """fill - drain - rebuffer closes exactly, rescued or not."""
    tracks = build_tracks(rates, n_segments)
    policy = ABR_POLICIES[policy_name]
    result = simulate_abr_session(
        0, tracks, trace, policy, loss_rate=loss,
        pin_rung=0 if rescue else None,
    )
    assert result.accounting_closes(eps=1e-6)
    assert result.fill_vms == n_segments * SEGMENT_VMS
    assert result.startup_vms >= 0
    assert result.played_vms >= 0
    assert result.rebuffer_vms >= 0
    assert result.final_buffer_vms >= -1e-6
    assert len(result.rungs) == n_segments
    assert all(0 <= rung < len(tracks) for rung in result.rungs)
