"""ABR control plane: policies, buffer model, fleet refinement, rescue."""

from __future__ import annotations

import pytest

from repro.service.abr import (
    ABR_OUTCOMES,
    ABR_POLICIES,
    ABR_POLICY_LADDER,
    AbrPolicy,
    RenditionTrack,
    select_initial_rung,
    simulate_abr_fleet,
    simulate_abr_session,
)
from repro.service.config import ServiceConfig
from repro.service.faults import FaultConfig, FaultPlan
from repro.service.recovery import POLICIES, simulate_recovery
from repro.service.scheduler import schedule_fleet
from repro.service.session import build_fleet
from repro.transport.bandwidth import PROFILES, BandwidthTrace

SEGMENT_VMS = 40.0


def make_tracks(rates_kbps=(4.0, 10.0, 20.0), n_segments=8):
    """Synthetic flat-rate ladder: rung r costs rate*segment_vms bits."""
    return tuple(
        RenditionTrack(
            name=f"r{i}",
            nominal_kbps=rate,
            segment_bits=tuple([int(rate * SEGMENT_VMS)] * n_segments),
            segment_psnr_db=tuple([20.0 + 5.0 * i] * n_segments),
        )
        for i, rate in enumerate(rates_kbps)
    )


def flat_trace(kbps):
    return BandwidthTrace(((0.0, float(kbps)),))


class TestPolicies:
    def test_ladder_shape(self):
        assert ABR_POLICY_LADDER == ("fixed", "buffer", "throughput", "hybrid")
        assert not ABR_POLICIES["fixed"].adapt
        assert not ABR_POLICIES["fixed"].rescue_shed
        assert ABR_POLICIES["hybrid"].use_throughput
        assert ABR_POLICIES["hybrid"].use_buffer

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            AbrPolicy("bad", window=0)
        with pytest.raises(ValueError):
            AbrPolicy("bad", safety=0.0)
        with pytest.raises(ValueError):
            AbrPolicy("bad", low_buffer_vms=10.0, panic_buffer_vms=20.0)
        with pytest.raises(ValueError):
            AbrPolicy("bad", dwell_vms=-1.0)

    def test_initial_rung_selection_is_monotone(self):
        tracks = make_tracks()
        rungs = [
            select_initial_rung(tracks, capacity, 0.85)
            for capacity in (1.0, 5.0, 12.0, 25.0, 100.0)
        ]
        assert rungs == sorted(rungs)
        assert rungs[0] == 0
        assert rungs[-1] == len(tracks) - 1


class TestSimulateAbrSession:
    def test_ample_bandwidth_never_stalls_or_switches(self):
        trace = simulate_abr_session(
            0, make_tracks(), flat_trace(100.0), ABR_POLICIES["hybrid"]
        )
        assert trace.rebuffer_events == 0
        assert trace.rebuffer_vms == 0.0
        assert trace.n_switches == 0
        assert trace.rungs == tuple([2] * 8)
        assert trace.accounting_closes()

    def test_fixed_overcommits_and_stalls_on_a_collapse(self):
        # Provisioned 25 kbps picks the top rung (20 kbps); capacity then
        # collapses to 6 kbps: fixed stalls, hybrid steps down.
        collapse = BandwidthTrace(((0.0, 25.0), (80.0, 6.0)))
        fixed = simulate_abr_session(
            0, make_tracks(), collapse, ABR_POLICIES["fixed"]
        )
        hybrid = simulate_abr_session(
            0, make_tracks(), collapse, ABR_POLICIES["hybrid"]
        )
        assert fixed.n_switches == 0
        assert fixed.rebuffer_vms > 0
        assert hybrid.switch_down > 0
        assert hybrid.rebuffer_vms < fixed.rebuffer_vms
        assert hybrid.accounting_closes()
        assert fixed.accounting_closes()

    def test_pinned_rescue_rung(self):
        trace = simulate_abr_session(
            0, make_tracks(), flat_trace(100.0), ABR_POLICIES["hybrid"],
            pin_rung=0,
        )
        assert trace.rescued
        assert trace.rungs == tuple([0] * 8)
        assert trace.n_switches == 0

    def test_loss_inflates_download_time(self):
        clean = simulate_abr_session(
            0, make_tracks(), flat_trace(30.0), ABR_POLICIES["fixed"]
        )
        lossy = simulate_abr_session(
            0, make_tracks(), flat_trace(30.0), ABR_POLICIES["fixed"],
            loss_rate=0.05,
        )
        assert lossy.download_vms > clean.download_vms
        assert lossy.delivered_bits == clean.delivered_bits

    def test_switches_respect_the_dwell_window(self):
        # Sawtooth capacity tries to force a switch every segment.
        saw = BandwidthTrace(tuple(
            (i * SEGMENT_VMS, 25.0 if i % 2 == 0 else 5.0) for i in range(8)
        ))
        trace = simulate_abr_session(
            0, make_tracks(), saw, ABR_POLICIES["throughput"]
        )
        times = trace.switch_vms
        dwell = ABR_POLICIES["throughput"].dwell_vms
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= dwell

    def test_empty_ladder_and_bad_loss_rejected(self):
        with pytest.raises(ValueError):
            simulate_abr_session(0, (), flat_trace(10.0),
                                 ABR_POLICIES["fixed"])
        with pytest.raises(ValueError):
            simulate_abr_session(0, make_tracks(), flat_trace(10.0),
                                 ABR_POLICIES["fixed"], loss_rate=1.0)


class TestSimulateAbrFleet:
    CONFIG = ServiceConfig(
        n_frames=8, loss_palette=(0.05,), capacity_units_per_vms=1.0
    )
    N = 32

    def fleet_report(self, policy_name, provisioned=36.0, profile="step_drop"):
        config = self.CONFIG
        specs = build_fleet(4, self.N, config)
        schedule = schedule_fleet(specs, config)
        plan = FaultPlan(4, FaultConfig(intensity=0.2))
        recovery = simulate_recovery(
            specs, schedule, plan, POLICIES["full"], config
        )
        tracks_by_variant = {
            variant: make_tracks()
            for variant in {spec.scene_variant for spec in specs}
        }
        report = simulate_abr_fleet(
            specs, schedule, recovery, tracks_by_variant,
            ABR_POLICIES[policy_name], PROFILES[profile], provisioned, config,
        )
        return schedule, report

    def test_conservation_across_the_policy_ladder(self):
        for policy in ABR_POLICY_LADDER:
            schedule, report = self.fleet_report(policy)
            assert report.conserves(schedule), (policy, report.outcomes)
            assert sum(report.outcomes[k] for k in ABR_OUTCOMES) \
                == schedule.offered

    def test_rescue_lane_lifts_deadline_sheds(self):
        schedule, fixed = self.fleet_report("fixed")
        _, hybrid = self.fleet_report("hybrid")
        assert fixed.outcomes["shed"] > 0  # the baseline sheds...
        assert hybrid.rescued > 0  # ...and the rescue lane lifts them
        assert hybrid.outcomes["shed"] < fixed.outcomes["shed"]
        # Rescued sessions are marked and pinned to the bottom rung.
        rescued = [t for t in hybrid.traces if t.rescued]
        assert len(rescued) == hybrid.rescued
        for trace in rescued:
            assert set(trace.rungs) == {0}

    def test_non_deadline_sheds_stay_shed(self):
        config = ServiceConfig(queue_limit=1, token_rate_per_vms=0.0,
                               token_burst=1.0)
        specs = build_fleet(4, 16, config)
        schedule = schedule_fleet(specs, config)
        plan = FaultPlan(4, FaultConfig(intensity=0.0))
        recovery = simulate_recovery(
            specs, schedule, plan, POLICIES["full"], config
        )
        tracks_by_variant = {
            variant: make_tracks()
            for variant in {spec.scene_variant for spec in specs}
        }
        report = simulate_abr_fleet(
            specs, schedule, recovery, tracks_by_variant,
            ABR_POLICIES["hybrid"], PROFILES["steady"], 100.0, config,
        )
        assert report.conserves(schedule)
        assert report.outcomes["shed"] == sum(report.shed_reasons.values())
        assert report.shed_reasons.get("deadline", 0) == 0  # none rescued away
        assert report.outcomes["shed"] > 0

    def test_quarantined_sessions_stay_quarantined(self):
        schedule, report = self.fleet_report("hybrid")
        for session_id, outcome in report.session_outcomes.items():
            if outcome == "quarantined":
                with pytest.raises(KeyError):
                    report.trace_for(session_id)

    def test_deterministic_per_seed(self):
        _, a = self.fleet_report("hybrid")
        _, b = self.fleet_report("hybrid")
        assert a.outcomes == b.outcomes
        assert a.session_outcomes == b.session_outcomes
        assert [t.rungs for t in a.traces] == [t.rungs for t in b.traces]

    def test_walk_profile_uses_per_session_entropy(self):
        _, a = self.fleet_report("hybrid", profile="walk")
        _, b = self.fleet_report("hybrid", profile="walk")
        assert [t.rungs for t in a.traces] == [t.rungs for t in b.traces]
        assert a.conserves is not None  # smoke: the walk path runs

    def test_empty_ladder_rejected(self):
        config = self.CONFIG
        specs = build_fleet(4, 4, config)
        schedule = schedule_fleet(specs, config)
        plan = FaultPlan(4, FaultConfig(intensity=0.0))
        recovery = simulate_recovery(
            specs, schedule, plan, POLICIES["full"], config
        )
        with pytest.raises(ValueError):
            simulate_abr_fleet(
                specs, schedule, recovery, {}, ABR_POLICIES["hybrid"],
                PROFILES["steady"], 30.0, config,
            )
