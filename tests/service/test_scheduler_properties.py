"""Property suite: scheduler laws under randomized arrivals and budgets.

Hypothesis drives arbitrary arrival timelines and admission budgets
through ``schedule_fleet`` and asserts the laws the service rests on:

- **conservation** -- admitted + shed == offered, tokens == admitted,
  shed reasons sum to shed; nothing is dropped silently;
- **no starvation** -- an admitted session always finishes within the
  deadline of its own arrival, and waits are non-negative;
- **FIFO single server** -- starts are monotone in arrival order and
  service intervals never overlap;
- **prefix determinism** -- the schedule of the first ``k`` arrivals is
  unchanged by whatever arrives later (the keystone of both resumability
  and cross-N comparability).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.config import ServiceConfig
from repro.service.scheduler import (
    OUTCOME_SHED,
    SHED_REASONS,
    schedule_fleet,
)
from repro.service.session import SessionSpec

arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=80,
).map(lambda ts: sorted(round(t, 3) for t in ts))

configs = st.builds(
    ServiceConfig,
    queue_limit=st.integers(min_value=1, max_value=12),
    degrade_depth=st.integers(min_value=0, max_value=6),
    deadline_vms=st.sampled_from([15.0, 50.0, 190.0, 400.0]),
    token_rate_per_vms=st.sampled_from([0.0, 0.05, 0.2, 1.0]),
    token_burst=st.sampled_from([1.0, 4.0, 24.0]),
)


def make_specs(arrivals: list[float]) -> list[SessionSpec]:
    return [
        SessionSpec(
            session_id=index,
            fleet_seed=0,
            arrival_vms=t,
            channel_seed=index,
            scene_variant=0,
            loss_rate=0.0,
        )
        for index, t in enumerate(arrivals)
    ]


@settings(max_examples=80, deadline=None)
@given(arrivals=arrival_lists, config=configs)
def test_conservation_and_loud_shedding(arrivals, config):
    specs = make_specs(arrivals)
    schedule = schedule_fleet(specs, config)
    assert schedule.conserves()
    assert schedule.offered == len(specs)
    assert len(schedule.plans) == len(specs)
    assert [p.session_id for p in schedule.plans] == [
        s.session_id for s in specs
    ]
    for plan in schedule.plans:
        if plan.outcome == OUTCOME_SHED:
            assert plan.shed_reason in SHED_REASONS
        else:
            assert plan.shed_reason is None


@settings(max_examples=80, deadline=None)
@given(arrivals=arrival_lists, config=configs)
def test_no_starvation(arrivals, config):
    """Admission is a promise: the session finishes within its deadline."""
    schedule = schedule_fleet(make_specs(arrivals), config)
    for plan in schedule.admitted_plans():
        assert plan.start_vms >= plan.arrival_vms
        assert plan.wait_vms >= 0.0
        assert plan.finish_vms <= plan.arrival_vms + config.deadline_vms + 1e-6
        assert plan.service_vms == config.service_vms(plan.mode)


@settings(max_examples=80, deadline=None)
@given(arrivals=arrival_lists, config=configs)
def test_fifo_single_server(arrivals, config):
    admitted = schedule_fleet(make_specs(arrivals), config).admitted_plans()
    for earlier, later in zip(admitted, admitted[1:]):
        assert later.start_vms >= earlier.start_vms
        assert later.start_vms >= earlier.finish_vms - 1e-6


@settings(max_examples=80, deadline=None)
@given(arrivals=arrival_lists, config=configs, data=st.data())
def test_prefix_determinism(arrivals, config, data):
    """Later arrivals never rewrite earlier decisions."""
    specs = make_specs(arrivals)
    k = data.draw(st.integers(min_value=0, max_value=len(specs)))
    full = schedule_fleet(specs, config)
    prefix = schedule_fleet(specs[:k], config)
    assert prefix.plans == full.plans[:k]


@settings(max_examples=80, deadline=None)
@given(arrivals=arrival_lists, config=configs)
def test_schedule_is_pure(arrivals, config):
    specs = make_specs(arrivals)
    a = schedule_fleet(specs, config)
    b = schedule_fleet(specs, config)
    assert a.plans == b.plans
    assert a.shed_reasons == b.shed_reasons
    assert a.makespan_vms == b.makespan_vms
