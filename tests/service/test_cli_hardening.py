"""CLI input hardening: invalid arguments are rejected with a typed
error rendered as one line and exit code 2 -- never a traceback, never a
partially written run directory."""

from __future__ import annotations

import pytest

from repro.service.cli import (
    CliArgumentError,
    _check,
    abrstudy_main,
    faultstudy_main,
    serve_main,
)


class TestCheckHelper:
    def test_raises_typed_error(self):
        with pytest.raises(CliArgumentError, match="nope"):
            _check(False, "nope")
        _check(True, "fine")

    def test_is_a_value_error(self):
        assert issubclass(CliArgumentError, ValueError)


def run_rejected(capsys, main, argv, fragment):
    assert main(argv) == 2
    output = capsys.readouterr().out
    line = [l for l in output.splitlines() if l.startswith("error:")]
    assert len(line) == 1, output
    assert fragment in line[0]


class TestServeRejections:
    def test_zero_sessions(self, tmp_path, capsys):
        run_rejected(capsys, serve_main,
                     ["--runs-dir", str(tmp_path), "--sessions", "0"],
                     "--sessions")
        assert not (tmp_path / "default").exists()

    def test_negative_sessions(self, tmp_path, capsys):
        run_rejected(capsys, serve_main,
                     ["--runs-dir", str(tmp_path), "--sessions", "-3"],
                     "--sessions")

    def test_zero_jobs(self, tmp_path, capsys):
        run_rejected(capsys, serve_main,
                     ["--runs-dir", str(tmp_path), "--jobs", "0"],
                     "--jobs")


class TestFaultstudyRejections:
    def test_zero_sessions(self, tmp_path, capsys):
        run_rejected(capsys, faultstudy_main,
                     ["--runs-dir", str(tmp_path), "--sessions", "0"],
                     "--sessions")

    def test_intensity_out_of_range(self, tmp_path, capsys):
        run_rejected(capsys, faultstudy_main,
                     ["--runs-dir", str(tmp_path), "--intensity", "1.5"],
                     "--intensity")
        run_rejected(capsys, faultstudy_main,
                     ["--runs-dir", str(tmp_path), "--intensity", "-0.1"],
                     "--intensity")

    def test_zero_jobs(self, tmp_path, capsys):
        run_rejected(capsys, faultstudy_main,
                     ["--runs-dir", str(tmp_path), "--jobs", "0"],
                     "--jobs")


class TestAbrstudyRejections:
    def test_zero_sessions(self, tmp_path, capsys):
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--sessions", "0"],
                     "--sessions")
        assert not (tmp_path / "default").exists()

    def test_nonpositive_bandwidth(self, tmp_path, capsys):
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--bandwidth", "-8"],
                     "--bandwidth")
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--bandwidth", "0"],
                     "--bandwidth")

    def test_empty_ladder(self, tmp_path, capsys):
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--ladder"],
                     "--ladder")

    def test_unknown_rendition(self, tmp_path, capsys):
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--ladder", "r9_nope"],
                     "r9_nope")

    def test_zero_jobs(self, tmp_path, capsys):
        run_rejected(capsys, abrstudy_main,
                     ["--runs-dir", str(tmp_path), "--jobs", "0"],
                     "--jobs")
