"""Unit tests: the virtual-time scheduler's backpressure ladder.

Each rung -- bounded queue, degrade under pressure, deadline shedding,
token budget -- is exercised in isolation with a crafted config, and the
accounting laws (`conserves`, loud shedding, bounded waits) are checked
on real seeded fleets.
"""

from __future__ import annotations

import pytest

from repro.service.config import DEFAULT_CONFIG, ServiceConfig
from repro.service.scheduler import (
    OUTCOME_DEGRADED,
    OUTCOME_SERVED,
    OUTCOME_SHED,
    SHED_REASONS,
    schedule_fleet,
)
from repro.service.session import SessionSpec, build_fleet


def specs_at(*arrivals: float) -> list[SessionSpec]:
    """Minimal specs arriving at the given virtual times."""
    return [
        SessionSpec(
            session_id=index,
            fleet_seed=0,
            arrival_vms=t,
            channel_seed=index,
            scene_variant=0,
            loss_rate=0.0,
        )
        for index, t in enumerate(arrivals)
    ]


def cfg(**overrides) -> ServiceConfig:
    """Default geometry (full service = 12 vms, degraded = 6) with
    budget knobs overridden per test."""
    return ServiceConfig(**overrides)


RELAXED = dict(queue_limit=32, deadline_vms=10_000.0,
               token_rate_per_vms=1.0, token_burst=1000.0)


class TestLadderRungs:
    def test_uncontended_fleet_all_served_full(self):
        schedule = schedule_fleet(specs_at(0.0, 100.0, 200.0, 300.0), cfg())
        assert [p.outcome for p in schedule.plans] == [OUTCOME_SERVED] * 4
        assert schedule.shed == 0
        for plan in schedule.plans:
            assert plan.wait_vms == 0.0

    def test_depth_triggers_degraded_mode(self):
        config = cfg(degrade_depth=1, **RELAXED)
        schedule = schedule_fleet(specs_at(0.0, 0.0, 0.0), config)
        outcomes = [p.outcome for p in schedule.plans]
        assert outcomes == [OUTCOME_SERVED, OUTCOME_DEGRADED, OUTCOME_DEGRADED]
        assert schedule.plans[1].service_vms == config.service_vms("degraded")

    def test_bounded_queue_sheds_queue_full(self):
        config = cfg(queue_limit=1, degrade_depth=4, deadline_vms=10_000.0,
                     token_rate_per_vms=1.0, token_burst=1000.0)
        schedule = schedule_fleet(specs_at(0.0, 0.0, 0.0), config)
        assert schedule.plans[0].outcome == OUTCOME_SERVED
        for plan in schedule.plans[1:]:
            assert plan.outcome == OUTCOME_SHED
            assert plan.shed_reason == "queue_full"

    def test_deadline_degrades_then_sheds(self):
        # Full service (12 vms) misses a 10 vms deadline; the degraded
        # rung (6 vms) makes it -- once.  The next arrival cannot finish
        # even degraded (start 6 + 6 > 10) and is shed with a reason.
        config = cfg(deadline_vms=10.0, queue_limit=32,
                     token_rate_per_vms=1.0, token_burst=1000.0)
        schedule = schedule_fleet(specs_at(0.0, 0.0), config)
        assert schedule.plans[0].outcome == OUTCOME_DEGRADED
        assert schedule.plans[1].outcome == OUTCOME_SHED
        assert schedule.plans[1].shed_reason == "deadline"

    def test_empty_token_bucket_sheds_tokens(self):
        config = cfg(token_burst=1.0, token_rate_per_vms=0.0)
        schedule = schedule_fleet(specs_at(0.0, 0.0), config)
        assert schedule.plans[0].outcome == OUTCOME_SERVED
        assert schedule.plans[1].shed_reason == "tokens"
        assert schedule.tokens_consumed == 1

    def test_tokens_refill_with_virtual_time(self):
        # Rate 0.1/vms: after 10 vms one token is back.
        config = cfg(token_burst=1.0, token_rate_per_vms=0.1)
        schedule = schedule_fleet(specs_at(0.0, 1.0, 20.0), config)
        assert [p.outcome for p in schedule.plans] == [
            OUTCOME_SERVED, OUTCOME_SHED, OUTCOME_SERVED,
        ]


class TestScheduleInvariants:
    def test_requires_sorted_arrivals(self):
        with pytest.raises(ValueError, match="sorted"):
            schedule_fleet(specs_at(5.0, 1.0), cfg())

    def test_deterministic(self):
        specs = build_fleet(4, 200, DEFAULT_CONFIG)
        a = schedule_fleet(specs, DEFAULT_CONFIG)
        b = schedule_fleet(specs, DEFAULT_CONFIG)
        assert a.plans == b.plans
        assert a.shed_reasons == b.shed_reasons

    def test_conserves_across_load_regimes(self):
        for n in (0, 10, 100, 1000):
            specs = build_fleet(4, n, DEFAULT_CONFIG)
            schedule = schedule_fleet(specs, DEFAULT_CONFIG)
            assert schedule.conserves()
            assert schedule.offered == n

    def test_no_silent_drops_at_saturation(self):
        """Every offered session gets exactly one plan; every shed plan
        names its reason."""
        specs = build_fleet(4, 1000, DEFAULT_CONFIG)
        schedule = schedule_fleet(specs, DEFAULT_CONFIG)
        assert len(schedule.plans) == len(specs)
        assert {p.session_id for p in schedule.plans} == {
            s.session_id for s in specs
        }
        for plan in schedule.plans:
            if plan.outcome == OUTCOME_SHED:
                assert plan.shed_reason in SHED_REASONS
            else:
                assert plan.shed_reason is None

    def test_all_three_shed_reasons_fire_at_saturation(self):
        """The tuned default budgets keep every ladder rung live -- a
        config drift that collapses shedding onto one rung shows up here."""
        specs = build_fleet(4, 1000, DEFAULT_CONFIG)
        schedule = schedule_fleet(specs, DEFAULT_CONFIG)
        assert all(
            schedule.shed_reasons[reason] > 0 for reason in SHED_REASONS
        ), schedule.shed_reasons

    def test_no_starvation_under_overload(self):
        """Admitted => finishes within the deadline of its own arrival."""
        specs = build_fleet(4, 1000, DEFAULT_CONFIG)
        schedule = schedule_fleet(specs, DEFAULT_CONFIG)
        assert schedule.admitted > 0
        for plan in schedule.admitted_plans():
            assert plan.wait_vms >= 0.0
            assert (
                plan.finish_vms
                <= plan.arrival_vms + DEFAULT_CONFIG.deadline_vms + 1e-6
            )

    def test_shed_monotone_in_fleet_size(self):
        """More offered load never sheds less (same seed, growing N)."""
        for seed in (4, 5):
            sheds = [
                schedule_fleet(
                    build_fleet(seed, n, DEFAULT_CONFIG), DEFAULT_CONFIG
                ).shed
                for n in (10, 32, 100, 320, 1000)
            ]
            assert sheds == sorted(sheds), (seed, sheds)

    def test_plan_lookup(self):
        specs = build_fleet(4, 32, DEFAULT_CONFIG)
        schedule = schedule_fleet(specs, DEFAULT_CONFIG)
        for spec in specs:
            assert schedule.plan_for(spec.session_id).session_id == spec.session_id
        shed_ids = {p.session_id for p in schedule.plans if not p.admitted}
        assert {p.session_id for p in schedule.admitted_plans()}.isdisjoint(
            shed_ids
        )

    def test_shed_plan_has_no_mode(self):
        config = cfg(token_burst=1.0, token_rate_per_vms=0.0)
        schedule = schedule_fleet(specs_at(0.0, 0.0), config)
        with pytest.raises(ValueError, match="no mode"):
            schedule.plans[1].mode
