"""Study-layer tests: cells, sweeps, resume, chaos drill, CLI acceptance.

The acceptance contract of ``python -m repro serve``: the published
study artifacts are a pure function of ``(--sessions, --seed)`` -- byte
for byte identical across repeat runs, ``--jobs`` counts, backends, and
a chaos-killed run finished with ``--resume``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.runner.chaos import POINT_WORKER_CELL, PROFILES, ChaosInjector
from repro.service.cli import serve_main
from repro.service.config import DEFAULT_CONFIG
from repro.service.study import (
    DEFAULT_NS,
    FULL_NS,
    SMOKE_NS,
    ServeCell,
    run_cell,
    run_sweep,
    summarize,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


def read_artifacts(run_dir: Path) -> dict[str, bytes]:
    """Deterministic artifact bytes (telemetry + attempt counters excluded)."""
    artifacts = {}
    for path in sorted(run_dir.rglob("*")):
        if not path.is_file() or path.suffix == ".attempt":
            continue
        relative = path.relative_to(run_dir)
        if relative.parts[0] == "telemetry":
            continue
        artifacts[str(relative)] = path.read_bytes()
    return artifacts


class TestRunCell:
    def test_deterministic_record(self):
        cell = ServeCell(16, 4)
        record_a, _ = run_cell(cell)
        record_b, _ = run_cell(cell)
        assert record_a == record_b

    def test_record_accounting(self):
        record, wall = run_cell(ServeCell(32, 4))
        outcomes = record["outcomes"]
        assert outcomes["offered"] == 32
        assert (
            outcomes["served"] + outcomes["degraded"] + outcomes["shed"]
            == outcomes["offered"]
        )
        assert sum(outcomes["shed_reasons"].values()) == outcomes["shed"]
        admitted = outcomes["served"] + outcomes["degraded"]
        assert record["latency_vms"]["observations"] == admitted
        assert record["latency_vms"]["p50"] <= record["latency_vms"]["p95"]
        assert record["latency_vms"]["p95"] <= record["latency_vms"]["p99"]
        assert record["quality"]["mean_psnr_db"] > 20.0
        assert sum(record["quality"]["decode_outcomes"].values()) == admitted
        assert record["burstiness"]["peak_to_mean"] >= 1.0
        assert len(record["fleet_digest"]) == 64
        assert wall["cell_id"] == record["cell_id"] == "n32+s4"

    def test_small_cells_embed_per_session_table(self):
        record, _ = run_cell(ServeCell(10, 4))
        sessions = record["sessions"]
        assert [s["session_id"] for s in sessions] == list(range(10))
        for session in sessions:
            if session["outcome"] == "shed":
                assert session["shed_reason"] is not None
            else:
                latency = session["latency_vms"]
                assert latency["total"] == pytest.approx(
                    latency["wait"] + latency["encode"]
                    + latency["transport"] + latency["decode"],
                    abs=1e-3,
                )

    def test_large_cells_omit_per_session_table(self):
        record, _ = run_cell(ServeCell(65, 4))
        assert "sessions" not in record

    @pytest.mark.slow
    def test_full_scale_cell_shows_saturation(self):
        """The 10k point: heavy shedding across all three rungs, with
        tail latency pushed toward the deadline."""
        record, _ = run_cell(ServeCell(10_000, 4))
        outcomes = record["outcomes"]
        assert outcomes["shed"] > outcomes["served"] + outcomes["degraded"]
        assert all(v > 0 for v in outcomes["shed_reasons"].values())
        assert record["latency_vms"]["p99"] >= record["latency_vms"]["p50"]
        assert record["latency_vms"]["p99"] <= DEFAULT_CONFIG.deadline_vms + 100


class TestRunSweep:
    NS = (10,)
    SEEDS = (4,)

    def sweep(self, run_dir, **kw):
        return run_sweep(run_dir, ns=self.NS, seeds=self.SEEDS, **kw)

    def test_repeat_runs_byte_identical(self, tmp_path):
        self.sweep(tmp_path / "a")
        self.sweep(tmp_path / "b")
        assert read_artifacts(tmp_path / "a") == read_artifacts(tmp_path / "b")

    def test_jobs_and_backend_invariance(self, tmp_path):
        self.sweep(tmp_path / "serial", backend="serial", jobs=1)
        self.sweep(tmp_path / "async1", backend="asyncio", jobs=1)
        self.sweep(tmp_path / "async4", backend="asyncio", jobs=4)
        reference = read_artifacts(tmp_path / "serial")
        assert read_artifacts(tmp_path / "async1") == reference
        assert read_artifacts(tmp_path / "async4") == reference

    def test_resume_reuses_published_cells(self, tmp_path):
        first = self.sweep(tmp_path / "run")
        assert first["skipped_cells"] == 0
        before = read_artifacts(tmp_path / "run")
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == len(self.NS) * len(self.SEEDS)
        assert read_artifacts(tmp_path / "run") == before

    def test_corrupt_cell_recomputed_on_resume(self, tmp_path):
        self.sweep(tmp_path / "run")
        victim = tmp_path / "run" / "cells" / "n10+s4.json"
        reference = victim.read_bytes()
        victim.write_bytes(reference[: len(reference) // 2])
        resumed = self.sweep(tmp_path / "run", resume=True)
        assert resumed["skipped_cells"] == 0
        assert victim.read_bytes() == reference

    def test_summary_names_missing_cells(self, tmp_path):
        self.sweep(tmp_path / "run")
        summary = summarize(tmp_path / "run", ns=(10, 20), seeds=(4,))
        assert summary["missing_cells"] == ["n20+s4"]
        assert [row["n_sessions"] for row in summary["rows"]] == [10]

    def test_wall_telemetry_stays_out_of_the_record(self, tmp_path):
        self.sweep(tmp_path / "run")
        cell = json.loads(
            (tmp_path / "run" / "cells" / "n10+s4.json").read_text()
        )
        assert "wall_s" not in json.dumps(cell)
        wall = json.loads(
            (tmp_path / "run" / "telemetry" / "wall.json").read_text()
        )
        assert wall["schema"] == "repro-service-wall"
        assert wall["cells"][0]["cell_id"] == "n10+s4"


def _seed_killing_first_attempt(key: str) -> int:
    """A chaos seed that kills attempt 1 at ``key`` but spares attempt 2."""
    for seed in range(1, 500):
        injector = ChaosInjector(seed, PROFILES["kills"])
        if (
            injector.fault_at(POINT_WORKER_CELL, f"{key}/a1") == "kill"
            and injector.fault_at(POINT_WORKER_CELL, f"{key}/a2") is None
        ):
            return seed
    raise AssertionError("no suitable chaos seed found")


class TestChaosDrill:
    """Kill-and-resume: a SIGKILLed study finishes bit-identically."""

    N = 12

    def serve(self, tmp_path, run_id, *args, chaos=None, resume=False):
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        env.pop("REPRO_CHAOS", None)
        env.pop("REPRO_OBS", None)
        if chaos is not None:
            env["REPRO_CHAOS"] = chaos
        command = [
            sys.executable, "-m", "repro", "serve",
            "--sessions", str(self.N), "--seed", "4",
            "--runs-dir", str(tmp_path),
        ]
        command += ["--resume", run_id] if resume else ["--run-id", run_id]
        return subprocess.run(
            command + list(args), env=env, capture_output=True, text=True,
            timeout=180,
        )

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        clean = self.serve(tmp_path, "clean", "--verify-complete")
        assert clean.returncode == 0, clean.stderr

        chaos = f"{_seed_killing_first_attempt(f'serve:n{self.N}+s4')}:kills"
        struck = self.serve(tmp_path, "drill", chaos=chaos)
        assert struck.returncode != 0  # SIGKILLed mid-sweep

        for _ in range(6):
            finished = self.serve(
                tmp_path, "drill", "--verify-complete", chaos=chaos,
                resume=True,
            )
            if finished.returncode == 0:
                break
        assert finished.returncode == 0, finished.stderr
        assert "verify-complete passed" in finished.stdout

        assert read_artifacts(tmp_path / "drill") == read_artifacts(
            tmp_path / "clean"
        )


class TestServeCli:
    def run(self, tmp_path, *args):
        return serve_main(
            ["--runs-dir", str(tmp_path), "--backend", "serial", *args]
        )

    def test_acceptance_32_sessions_twice_identical(self, tmp_path, capsys):
        """ISSUE acceptance: serve --sessions 32 --seed 4, twice, byte-
        identical tables; and --jobs 1 vs --jobs 4 agree."""
        assert self.run(tmp_path, "--sessions", "32", "--seed", "4",
                        "--run-id", "a") == 0
        assert self.run(tmp_path, "--sessions", "32", "--seed", "4",
                        "--run-id", "b") == 0
        assert serve_main(
            ["--runs-dir", str(tmp_path), "--sessions", "32", "--seed", "4",
             "--backend", "asyncio", "--jobs", "4", "--run-id", "c"]
        ) == 0
        a = read_artifacts(tmp_path / "a")
        assert read_artifacts(tmp_path / "b") == a
        assert read_artifacts(tmp_path / "c") == a
        output = capsys.readouterr().out
        assert "sessions" in output and "PSNR" in output

    def test_verify_complete_passes_on_full_grid(self, tmp_path, capsys):
        assert self.run(tmp_path, "--sessions", "16", "--run-id", "ok",
                        "--verify-complete") == 0
        assert "verify-complete passed" in capsys.readouterr().out

    def test_resume_reuses_cells(self, tmp_path, capsys):
        assert self.run(tmp_path, "--sessions", "16", "--run-id", "again") == 0
        assert self.run(tmp_path, "--sessions", "16", "--resume", "again") == 0
        assert "1 reused" in capsys.readouterr().out

    def test_bad_arguments_exit_2(self, tmp_path):
        assert self.run(tmp_path, "--jobs", "0") == 2
        assert self.run(tmp_path, "--sessions", "-3") == 2

    def test_grid_constants(self):
        assert DEFAULT_NS == (10, 100, 1000)
        assert FULL_NS == DEFAULT_NS + (10_000,)
        assert SMOKE_NS == (32,)
