"""Test-runtime budget guard for the service layer.

The tier-1 gate stays fast only if the smoke-scale study stays fast.
This guard times the canonical 32-session smoke cell against a budget
generous enough to absorb CI jitter (the cell runs in well under a
second locally) but tight enough that an accidental O(N^2) pass, a lost
encode cache, or an unintentionally huge default geometry fails the
suite instead of silently tripling its wall time.
"""

from __future__ import annotations

import time

from repro.service.config import DEFAULT_CONFIG
from repro.service.study import SMOKE_NS, ServeCell, run_cell

#: Seconds one warmed 32-session smoke cell may take (CI-jitter headroom
#: over a locally sub-second run).
SMOKE_CELL_BUDGET_S = 20.0


def test_smoke_cell_within_runtime_budget():
    cell = ServeCell(SMOKE_NS[0], 4)
    run_cell(cell)  # warm the per-process source/encode caches
    start = time.perf_counter()
    record, _ = run_cell(cell)
    elapsed = time.perf_counter() - start
    assert elapsed < SMOKE_CELL_BUDGET_S, (
        f"32-session smoke cell took {elapsed:.1f}s "
        f"(budget {SMOKE_CELL_BUDGET_S}s)"
    )
    assert record["outcomes"]["offered"] == SMOKE_NS[0]


def test_smoke_geometry_stays_smoke_sized():
    """The budget above assumes tiny sessions; pin the assumption."""
    assert DEFAULT_CONFIG.width * DEFAULT_CONFIG.height <= 176 * 144
    assert DEFAULT_CONFIG.n_frames <= 8
    assert DEFAULT_CONFIG.scene_variants <= 8
