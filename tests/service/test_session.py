"""Session execution: purity, quality ladder, loss accounting."""

from __future__ import annotations

import pytest

from repro.service.config import DEFAULT_CONFIG, MODE_DEGRADED, MODE_FULL
from repro.service.session import (
    SessionSpec,
    build_fleet,
    execute_session,
    reset_encode_cache,
    scene_spec_for_variant,
)


@pytest.fixture
def fleet():
    return build_fleet(4, 16, DEFAULT_CONFIG)


def lossless(fleet):
    return next(s for s in fleet if s.loss_rate == 0.0)


def lossy(fleet):
    return max(fleet, key=lambda s: s.loss_rate)


class TestPurity:
    def test_repeat_execution_identical(self, fleet):
        spec = lossy(fleet)
        assert execute_session(spec, MODE_FULL, DEFAULT_CONFIG) == \
            execute_session(spec, MODE_FULL, DEFAULT_CONFIG)

    def test_cache_warmth_never_changes_results(self, fleet):
        """A cold worker process and a warm one produce the same bytes."""
        spec = lossy(fleet)
        warm = execute_session(spec, MODE_FULL, DEFAULT_CONFIG)
        reset_encode_cache()
        cold = execute_session(spec, MODE_FULL, DEFAULT_CONFIG)
        assert cold == warm

    def test_sessions_sharing_a_variant_share_the_stream_source(self, fleet):
        """Encode is per (variant, mode): two lossless sessions on one
        variant deliver identical bitstreams through distinct channels."""
        template = lossless(fleet)
        pair = [
            SessionSpec(
                session_id=1000 + offset,
                fleet_seed=template.fleet_seed,
                arrival_vms=0.0,
                channel_seed=template.channel_seed + offset,
                scene_variant=template.scene_variant,
                loss_rate=0.0,
            )
            for offset in (0, 1)
        ]
        results = [
            execute_session(s, MODE_FULL, DEFAULT_CONFIG) for s in pair
        ]
        assert len({r.stream_digest for r in results}) == 1


class TestQualityLadder:
    def test_degraded_rung_is_smaller_and_worse(self, fleet):
        spec = lossless(fleet)
        full = execute_session(spec, MODE_FULL, DEFAULT_CONFIG)
        degraded = execute_session(spec, MODE_DEGRADED, DEFAULT_CONFIG)
        assert degraded.stream_bits < full.stream_bits
        assert degraded.psnr_db < full.psnr_db
        assert degraded.stream_digest != full.stream_digest

    def test_lossless_session_decodes_clean(self, fleet):
        result = execute_session(lossless(fleet), MODE_FULL, DEFAULT_CONFIG)
        assert result.decode_outcome == "decoded"
        assert result.n_dropped == 0
        assert result.n_unrepaired == 0
        assert result.psnr_db > 25.0

    def test_unknown_mode_rejected(self, fleet):
        with pytest.raises(ValueError, match="mode"):
            execute_session(fleet[0], "hd", DEFAULT_CONFIG)


class TestAccounting:
    def test_loss_accounted_across_fleet(self, fleet):
        """No admitted session's packets vanish: dropped packets are
        recovered by FEC or named as unrepaired losses."""
        for spec in fleet:
            result = execute_session(spec, MODE_FULL, DEFAULT_CONFIG)
            assert result.loss_accounted(), spec
            assert result.n_sent_packets >= result.n_data_packets
            assert result.transport_vms >= 0.0
            assert result.decode_vms == DEFAULT_CONFIG.decode_vms(MODE_FULL)

    def test_digests_are_sha256_hex(self, fleet):
        result = execute_session(lossless(fleet), MODE_FULL, DEFAULT_CONFIG)
        assert len(result.stream_digest) == 64
        assert len(result.frames_digest) == 64
        int(result.stream_digest, 16)
        int(result.frames_digest, 16)


class TestSceneVariants:
    def test_variants_produce_distinct_scenes(self):
        specs = [
            scene_spec_for_variant(v, DEFAULT_CONFIG)
            for v in range(DEFAULT_CONFIG.scene_variants)
        ]
        assert len(set(specs)) == DEFAULT_CONFIG.scene_variants

    def test_distinct_variants_yield_distinct_streams(self, fleet):
        by_variant = {}
        for spec in fleet:
            if spec.loss_rate == 0.0:
                result = execute_session(spec, MODE_FULL, DEFAULT_CONFIG)
                by_variant[spec.scene_variant] = result.stream_digest
        digests = list(by_variant.values())
        assert len(set(digests)) == len(digests)
