"""Per-session seeding: independence, prefix stability, no shared rng.

The regression this file exists for: a fleet that seeds sessions from
adjacent integers, or worse from one shared module-level generator,
produces correlated loss patterns across sessions and
interleaving-dependent results.  Sessions must derive independent child
seeds via ``SeedSequence.spawn``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.config import DEFAULT_CONFIG
from repro.service.seeding import channel_mask_for, spawn_session_seeds
from repro.service.session import build_fleet
from repro.transport.channel import GilbertElliottChannel, profile_for_loss


def _mask_correlation(a: list[bool], b: list[bool]) -> float:
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


class TestSpawn:
    def test_deterministic(self):
        assert spawn_session_seeds(4, 8) == spawn_session_seeds(4, 8)

    def test_child_seeds_distinct(self):
        seeds = spawn_session_seeds(4, 200)
        assert len({s.channel_seed for s in seeds}) == 200

    def test_prefix_stable_under_fleet_growth(self):
        """Session i keeps its identity whatever the fleet size is."""
        small = spawn_session_seeds(4, 10)
        large = spawn_session_seeds(4, 1000)
        assert large[:10] == small

    def test_distinct_fleet_seeds_diverge(self):
        a = spawn_session_seeds(4, 16)
        b = spawn_session_seeds(5, 16)
        assert all(x.channel_seed != y.channel_seed for x, y in zip(a, b))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_session_seeds(4, -1)


class TestLossPatternIndependence:
    """Adjacent seeds must not produce correlated channels."""

    N_PACKETS = 4000
    LOSS = 0.05

    def test_adjacent_fleet_seeds_uncorrelated(self):
        """Fleets seeded 4 and 5: same session index, independent loss."""
        a = spawn_session_seeds(4, 4)
        b = spawn_session_seeds(5, 4)
        for x, y in zip(a, b):
            mask_a = channel_mask_for(x.channel_seed, self.LOSS, self.N_PACKETS)
            mask_b = channel_mask_for(y.channel_seed, self.LOSS, self.N_PACKETS)
            assert mask_a != mask_b
            assert abs(_mask_correlation(mask_a, mask_b)) < 0.1

    def test_adjacent_sessions_uncorrelated(self):
        """Sessions i and i+1 of one fleet: independent loss patterns."""
        seeds = spawn_session_seeds(4, 8)
        for x, y in zip(seeds, seeds[1:]):
            mask_a = channel_mask_for(x.channel_seed, self.LOSS, self.N_PACKETS)
            mask_b = channel_mask_for(y.channel_seed, self.LOSS, self.N_PACKETS)
            assert mask_a != mask_b
            assert abs(_mask_correlation(mask_a, mask_b)) < 0.1

    def test_channels_are_isolated_not_shared(self):
        """Interleaving two sessions' channel draws must not change either
        stream -- the failure mode of a shared module-level rng."""
        seeds = spawn_session_seeds(4, 2)
        profile = profile_for_loss(self.LOSS)

        sequential = [
            GilbertElliottChannel(s.channel_seed, profile).loss_mask(400)
            for s in seeds
        ]
        chan_a = GilbertElliottChannel(seeds[0].channel_seed, profile)
        chan_b = GilbertElliottChannel(seeds[1].channel_seed, profile)
        interleaved_a: list[bool] = []
        interleaved_b: list[bool] = []
        for _ in range(40):  # alternate draws, 10 packets at a time
            interleaved_a.extend(chan_a.loss_mask(10))
            interleaved_b.extend(chan_b.loss_mask(10))
        assert [interleaved_a, interleaved_b] == sequential


class TestBuildFleet:
    def test_sorted_by_arrival(self):
        specs = build_fleet(4, 64, DEFAULT_CONFIG)
        arrivals = [s.arrival_vms for s in specs]
        assert arrivals == sorted(arrivals)
        assert {s.session_id for s in specs} == set(range(64))

    def test_draws_within_domains(self):
        config = DEFAULT_CONFIG
        for spec in build_fleet(7, 128, config):
            assert 0.0 <= spec.arrival_vms < config.arrival_window_vms
            assert 0 <= spec.scene_variant < config.scene_variants
            assert spec.loss_rate in config.loss_palette

    def test_fleet_uses_all_variants_and_losses(self):
        config = DEFAULT_CONFIG
        specs = build_fleet(4, 128, config)
        assert {s.scene_variant for s in specs} == set(range(config.scene_variants))
        assert {s.loss_rate for s in specs} == set(config.loss_palette)

    def test_pinned_snapshot(self):
        """Derived identity at fleet seed 4 is pinned: a change here means
        every published fleet digest silently re-keys."""
        spec = build_fleet(4, 3, DEFAULT_CONFIG)[0]
        assert spec.session_id in (0, 1, 2)
        again = build_fleet(4, 3, DEFAULT_CONFIG)[0]
        assert spec == again
