"""Differential backend tests: serial vs asyncio vs supervised fleet.

The contract: a backend decides only how fast the codec work runs, never
what it produces.  Results -- digests included -- must be bit-identical
across backends and across ``jobs`` counts.
"""

from __future__ import annotations

import pytest

from repro.service.backends import BACKENDS, execute_schedule
from repro.service.config import DEFAULT_CONFIG
from repro.service.scheduler import schedule_fleet
from repro.service.session import build_fleet

N_SESSIONS = 12
SEED = 4


@pytest.fixture(scope="module")
def fleet():
    specs = build_fleet(SEED, N_SESSIONS, DEFAULT_CONFIG)
    return specs, schedule_fleet(specs, DEFAULT_CONFIG)


@pytest.fixture(scope="module")
def reference(fleet):
    specs, schedule = fleet
    return execute_schedule(specs, schedule, DEFAULT_CONFIG, "serial")


def test_backend_registry():
    assert BACKENDS == ("serial", "asyncio", "fleet")
    with pytest.raises(ValueError, match="backend"):
        execute_schedule([], schedule_fleet([], DEFAULT_CONFIG),
                         DEFAULT_CONFIG, backend="threads")


def test_empty_fleet_executes_to_nothing():
    schedule = schedule_fleet([], DEFAULT_CONFIG)
    assert execute_schedule([], schedule, DEFAULT_CONFIG, "serial") == {}


def test_reference_covers_exactly_the_admitted(fleet, reference):
    _, schedule = fleet
    assert set(reference) == {p.session_id for p in schedule.admitted_plans()}
    for plan in schedule.admitted_plans():
        assert reference[plan.session_id].mode == plan.mode


@pytest.mark.parametrize("jobs", [1, 4])
def test_asyncio_matches_serial(fleet, reference, jobs):
    specs, schedule = fleet
    results = execute_schedule(
        specs, schedule, DEFAULT_CONFIG, backend="asyncio", jobs=jobs
    )
    assert results == reference


def test_fleet_backend_matches_serial(fleet, reference):
    """Supervised worker processes (cold caches, own interpreters)
    reproduce the in-process results exactly."""
    specs, schedule = fleet
    results = execute_schedule(
        specs, schedule, DEFAULT_CONFIG, backend="fleet", jobs=2
    )
    assert results == reference
