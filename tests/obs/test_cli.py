"""End-to-end ``repro profile`` / ``repro obs report`` acceptance tests.

This is the acceptance criterion from the issue, executed for real: a
profiled encode must leave a valid Chrome trace plus a stage table whose
self-time sum lands within 10% of the measured wall-clock.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.cli import obs_main, profile_main
from repro.obs.export import read_spans_jsonl
from repro.obs.report import aggregate_stages, roots_total_ns
from repro.obs.schema import validate_file

COVERAGE_TOLERANCE = 0.10


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    for env in (obs.OBS_ENV, obs.LIMIT_ENV, obs.PROC_ENV, obs.DIR_ENV):
        monkeypatch.delenv(env, raising=False)
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def encode_bundle(tmp_path_factory):
    """One shared `repro profile encode` run at the acceptance geometry."""
    out = tmp_path_factory.mktemp("profile") / "bundle"
    rc = profile_main(
        ["encode", "--width", "176", "--height", "144", "--frames", "8",
         "--out", str(out)]
    )
    assert rc == 0
    return out


class TestProfileEncode:
    def test_emits_all_three_artifacts(self, encode_bundle):
        for name in ("trace.jsonl", "trace.json", "metrics.json"):
            assert (encode_bundle / name).exists(), name

    def test_artifacts_pass_schema_validation(self, encode_bundle):
        for name in ("trace.jsonl", "trace.json", "metrics.json"):
            assert validate_file(encode_bundle / name) == [], name

    def test_chrome_trace_is_loadable_json(self, encode_bundle):
        doc = json.loads((encode_bundle / "trace.json").read_text())
        events = doc["traceEvents"]
        assert any(event["ph"] == "X" for event in events)
        assert any(event["ph"] == "M" for event in events)

    def test_stage_sum_within_ten_percent_of_wall_clock(self, encode_bundle):
        meta, records = read_spans_jsonl(encode_bundle / "trace.jsonl")
        wall_ns = meta["wall_s"] * 1e9
        assert wall_ns > 0
        stage_sum = sum(r.self_ns for r in aggregate_stages(records))
        assert stage_sum == roots_total_ns(records)
        assert abs(stage_sum / wall_ns - 1.0) <= COVERAGE_TOLERANCE, (
            f"stages cover {stage_sum / wall_ns:.1%} of wall-clock"
        )

    def test_trace_meta_carries_provenance(self, encode_bundle):
        meta, _ = read_spans_jsonl(encode_bundle / "trace.jsonl")
        assert "git_sha" in meta and "hostname" in meta
        assert "engine_knobs" in meta

    def test_expected_encode_stages_present(self, encode_bundle):
        _, records = read_spans_jsonl(encode_bundle / "trace.jsonl")
        names = {r.name for r in records}
        assert "codec.encode.sequence" in names
        assert "codec.encode.dct_quant" in names
        assert "codec.encode.serialize" in names

    def test_recorder_left_disarmed(self, encode_bundle):
        assert not obs.enabled()


class TestProfileDecode:
    def test_decode_profile_names_the_vlc_parse_span(self, tmp_path, capsys):
        """Satellite 1's hinge: the parse share is a *named* span so the
        future C bit-reader has a baseline to beat."""
        out = tmp_path / "decode-bundle"
        rc = profile_main(
            ["decode", "--width", "96", "--height", "96", "--frames", "4",
             "--out", str(out)]
        )
        assert rc == 0
        _, records = read_spans_jsonl(out / "trace.jsonl")
        names = {r.name for r in records}
        assert "codec.decode.vlc_parse" in names
        assert "codec.decode.reconstruct" in names
        assert "codec.decode.vlc_parse" in capsys.readouterr().out


class TestObsReport:
    def test_report_reads_a_saved_trace(self, encode_bundle, capsys):
        rc = obs_main(["report", "--trace", str(encode_bundle / "trace.jsonl")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "codec.encode" in out
        assert "boundedness" in out
        assert "compute-bound" in out or "memory-bound" in out

    def test_report_rejects_empty_trace(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text(
            json.dumps({"schema": "repro-obs-trace", "version": 1}) + "\n"
        )
        assert obs_main(["report", "--trace", str(empty)]) == 1


class TestCliDispatch:
    def test_repro_cli_routes_profile_and_obs(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["profile", "--help"])
        assert exc.value.code == 0
        with pytest.raises(SystemExit) as exc:
            main(["obs", "--help"])
        assert exc.value.code == 0
