"""Observation must not perturb the observed system.

Telemetry is only trustworthy if switching it on changes *nothing* about
the pipeline's outputs: bitstreams stay bit-identical, decoded frames
stay equal, golden vectors (codec digests, memsim counters, resilience
curves) keep matching.  These tests run the same workloads with the
recorder on and off and diff the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.codec.bench import engine_env
from repro.codec.decoder import VopDecoder
from repro.codec.encoder import VopEncoder
from repro.codec.engine import ENGINE_BATCHED, ENGINE_REFERENCE
from repro.codec.types import CodecConfig
from repro.video import SceneSpec, SyntheticScene

WIDTH, HEIGHT, N_FRAMES = 96, 80, 5


@pytest.fixture(scope="module")
def frames():
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT))
    return [scene.frame(i) for i in range(N_FRAMES)]


def encode(frames):
    config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
    return VopEncoder(config).encode_sequence(frames).data


class TestBitstreamInvariance:
    @pytest.mark.parametrize("engine", [ENGINE_BATCHED, ENGINE_REFERENCE])
    def test_encode_bitstream_identical_with_obs_on(self, frames, engine):
        with engine_env(engine):
            baseline = encode(frames)
            with obs.recording() as session:
                observed = encode(frames)
            assert session.tracer.completed_total > 0  # obs actually ran
        assert observed == baseline

    def test_decode_output_identical_with_obs_on(self, frames):
        data = encode(frames)
        baseline = VopDecoder().decode_sequence(data)
        with obs.recording() as session:
            observed = VopDecoder().decode_sequence(data)
        assert session.tracer.completed_total > 0
        for expected, actual in zip(baseline.frames, observed.frames):
            assert np.array_equal(expected.y, actual.y)
            assert np.array_equal(expected.u, actual.u)
            assert np.array_equal(expected.v, actual.v)


class TestMemsimInvariance:
    def test_simulated_counters_identical_with_obs_on(self, frames):
        """The work-model trace (and hence every simulated counter) must
        not see the wall-clock spans."""
        from repro.core.machines import STUDY_MACHINES
        from repro.trace.persistence import TraceCapture
        from repro.trace.recorder import TraceRecorder

        def counters():
            capture = TraceCapture()
            config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
            VopEncoder(config, TraceRecorder([capture])).encode_sequence(frames)
            hierarchy = STUDY_MACHINES[0].build_hierarchy()
            for batch in capture.batches:
                hierarchy.process(batch)
            return hierarchy.total

        baseline = counters()
        with obs.recording():
            observed = counters()
        assert observed == baseline


class TestGoldenVectors:
    def test_golden_vectors_pass_under_recording(self):
        """The conformance gate itself, with the recorder armed."""
        from repro.conformance.golden import check_golden

        with obs.recording() as session:
            problems = check_golden()
        assert problems == []
        assert session.tracer.completed_total > 0
