"""The ``repro.obs`` facade: env gating, no-op path, sessions, spooling."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def fresh_obs_state(monkeypatch):
    """Every test starts from 'disabled, unresolved' and leaves no session."""
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    monkeypatch.delenv(obs.DIR_ENV, raising=False)
    monkeypatch.delenv(obs.PROC_ENV, raising=False)
    monkeypatch.delenv(obs.LIMIT_ENV, raising=False)
    obs.reset()
    yield
    obs.reset()


class TestGating:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.tracer() is None
        assert obs.registry() is None

    @pytest.mark.parametrize("value", ["on", "1", "true", "YES", "On"])
    def test_truthy_values_enable(self, value, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, value)
        obs.reset()
        assert obs.enabled()

    @pytest.mark.parametrize("value", ["", "off", "0", "false", "no"])
    def test_falsy_values_disable(self, value, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, value)
        obs.reset()
        assert not obs.enabled()

    def test_disabled_span_is_the_shared_noop_singleton(self):
        """No allocation on the off path: every call returns one object."""
        first = obs.span("a", key="value")
        second = obs.span("b")
        assert first is second
        with first:
            pass  # usable and re-entrant

    def test_disabled_metrics_are_noops(self):
        obs.counter_add("c")
        obs.gauge_set("g", 1.0)
        obs.gauge_max("g", 2.0)
        obs.histogram_observe("h", 0.5)  # nothing raised, nothing recorded
        assert obs.registry() is None

    def test_env_resolution_is_memoized(self, monkeypatch):
        assert not obs.enabled()
        monkeypatch.setenv(obs.OBS_ENV, "on")
        assert not obs.enabled()  # still memoized off
        obs.reset()
        assert obs.enabled()


class TestEnabledSession:
    def test_spans_and_metrics_record(self, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, "on")
        obs.reset()
        with obs.span("stage", mb=3):
            obs.counter_add("events", 2)
        records = obs.tracer().records()
        assert [r.name for r in records] == ["stage"]
        assert records[0].attrs == {"mb": 3}
        assert obs.registry().snapshot()["counters"]["events"] == 2

    def test_proc_label_and_limit_from_env(self, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, "on")
        monkeypatch.setenv(obs.PROC_ENV, "worker-7")
        monkeypatch.setenv(obs.LIMIT_ENV, "8")
        obs.reset()
        tracer = obs.tracer()
        assert tracer.proc_label == "worker-7"
        assert tracer.limit == 8

    def test_traced_decorator_resolves_lazily(self, monkeypatch):
        @obs.traced("late.region")
        def fn():
            return 42

        assert fn() == 42  # disabled: no session, still works
        monkeypatch.setenv(obs.OBS_ENV, "on")
        obs.reset()
        assert fn() == 42
        assert [r.name for r in obs.tracer().records()] == ["late.region"]


class TestRecording:
    def test_recording_forces_session_and_restores(self):
        assert not obs.enabled()
        with obs.recording() as session:
            with obs.span("r"):
                pass
            assert obs.session() is session
            assert [r.name for r in session.tracer.records()] == ["r"]
        assert not obs.enabled()

    def test_recording_restores_previous_session(self, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, "on")
        obs.reset()
        outer = obs.session()
        with obs.recording() as inner:
            assert obs.session() is inner
        assert obs.session() is outer


class TestFlushAndWorkerTask:
    def test_flush_part_requires_session_and_spool(self, tmp_path, monkeypatch):
        assert obs.flush_part("x") is None  # disabled
        monkeypatch.setenv(obs.OBS_ENV, "on")
        obs.reset()
        assert obs.flush_part("x") is None  # no spool configured
        monkeypatch.setenv(obs.DIR_ENV, str(tmp_path / "spool"))
        with obs.span("s"):
            pass
        part = obs.flush_part("x")
        assert part is not None and part.exists()
        # Drained: a second flush writes an empty part, not duplicates.
        from repro.obs.export import merge_parts

        records, _ = merge_parts(tmp_path / "spool")
        assert [r.name for r in records] == ["s"]

    def test_worker_task_disabled_yields_none(self):
        with obs.worker_task("cell-1") as session:
            assert session is None

    def test_worker_task_flushes_on_success(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, "on")
        monkeypatch.setenv(obs.DIR_ENV, str(tmp_path))
        obs.reset()
        with obs.worker_task("cell-1"):
            with obs.span("work"):
                pass
        from repro.obs.export import merge_parts

        records, _ = merge_parts(tmp_path)
        assert [r.name for r in records] == ["work"]
        # Identity depends on the task label, not pid or attempt.
        assert records[0].span_id.startswith("cell-1/")

    def test_worker_task_failure_flushes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_ENV, "on")
        monkeypatch.setenv(obs.DIR_ENV, str(tmp_path))
        obs.reset()
        with pytest.raises(RuntimeError):
            with obs.worker_task("cell-2"):
                with obs.span("doomed"):
                    raise RuntimeError("killed")
        assert list(tmp_path.glob("part-*.json")) == []
