"""Span-tree determinism: identity survives chaos-killed workers.

Span identity is ``<proc>/<thread>:<seq>`` with the worker's proc label
pinned to the task id and a fresh per-task tracer, and only *successful*
attempts flush part files.  So the merged span set of a study is a pure
function of the task set -- whether a task succeeded first try or was
SIGKILLed twice and retried must not change a single identity column.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.runner.chaos import (
    POINT_WORKER_CELL,
    PROFILES,
    ChaosInjector,
)
from repro.core.runner.supervisor import RetryPolicy, SupervisedPool, WorkerBudget
from repro.obs.export import merge_parts

TASKS = [f"cell-{index}" for index in range(4)]


def traced_task(task_id: str) -> str:
    """Worker-side body: emits a small deterministic span tree."""
    with obs.span("cell.run", cell=task_id):
        with obs.span("cell.phase_a"):
            pass
        with obs.span("cell.phase_b"):
            pass
    return task_id


def _kill_seed() -> int:
    """A chaos seed that kills at least one first attempt but lets every
    task finish within three attempts."""
    for seed in range(1, 300):
        injector = ChaosInjector(seed, PROFILES["kills"])
        first_attempt_kills = 0
        all_complete = True
        for task in TASKS:
            attempts = [
                injector.fault_at(POINT_WORKER_CELL, f"{task}/a{attempt}")
                for attempt in (1, 2, 3)
            ]
            if attempts[0] == "kill":
                first_attempt_kills += 1
            if all(fault == "kill" for fault in attempts):
                all_complete = False
        if first_attempt_kills >= 1 and all_complete:
            return seed
    raise AssertionError("no suitable chaos seed found")


def _run_study(tmp_path, monkeypatch, chaos: str | None) -> tuple:
    spool = tmp_path / ("chaos-spool" if chaos else "clean-spool")
    monkeypatch.setenv(obs.OBS_ENV, "on")
    monkeypatch.setenv(obs.DIR_ENV, str(spool))
    if chaos is None:
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
    else:
        monkeypatch.setenv("REPRO_CHAOS", chaos)
    obs.reset()
    try:
        pool = SupervisedPool(
            max_workers=2,
            budget=WorkerBudget(wall_s=30.0, heartbeat_s=15.0),
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
        )
        outcomes = pool.run(
            [(task, traced_task, (task,)) for task in TASKS]
        )
    finally:
        obs.reset()
    records, _ = merge_parts(spool)
    return outcomes, records


def identity_columns(records):
    return sorted(
        (r.span_id, r.parent_id, r.name, r.proc, r.thread) for r in records
    )


def test_span_identity_survives_worker_kills(tmp_path, monkeypatch):
    seed = _kill_seed()
    clean_outcomes, clean_records = _run_study(tmp_path, monkeypatch, None)
    chaos_outcomes, chaos_records = _run_study(
        tmp_path, monkeypatch, f"{seed}:kills"
    )

    assert all(outcome.ok for outcome in clean_outcomes.values())
    assert all(outcome.ok for outcome in chaos_outcomes.values())
    # The chaos run really did lose at least one attempt...
    total_attempts = sum(
        len(outcome.attempts) for outcome in chaos_outcomes.values()
    )
    assert total_attempts > len(TASKS)
    # ...and yet the merged span identities are byte-identical.
    assert identity_columns(chaos_records) == identity_columns(clean_records)
    # Tree shape: every task contributes exactly its three spans.
    names = sorted(r.name for r in clean_records)
    assert names == sorted(
        ["cell.run", "cell.phase_a", "cell.phase_b"] * len(TASKS)
    )


def test_single_process_identity_is_reproducible(monkeypatch):
    """The same workload records the same identity columns twice."""
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    obs.reset()
    runs = []
    for _ in range(2):
        with obs.recording() as session:
            traced_task("cell-x")
        runs.append(identity_columns(session.tracer.records()))
    assert runs[0] == runs[1]
