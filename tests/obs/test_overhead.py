"""Overhead guard: with ``REPRO_OBS`` off, instrumentation is near-free.

The contract is <2% added wall time on the batched encode path.  Timing
two full encodes against each other is noise-dominated at test scale, so
the guard is built from stable quantities instead:

1. count how many facade calls one encode actually makes (recorded run);
2. measure the per-call cost of the *disabled* facade path directly;
3. assert (calls x per-call cost) stays under 2% of the encode time.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.codec.bench import engine_env
from repro.codec.encoder import VopEncoder
from repro.codec.engine import ENGINE_BATCHED
from repro.codec.types import CodecConfig
from repro.video import SceneSpec, SyntheticScene

WIDTH, HEIGHT, N_FRAMES = 176, 144, 8
OVERHEAD_BUDGET = 0.02


@pytest.fixture(autouse=True)
def obs_disabled(monkeypatch):
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    obs.reset()
    yield
    obs.reset()


def _encode(frames):
    config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
    return VopEncoder(config).encode_sequence(frames)


def test_disabled_span_overhead_under_two_percent():
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT))
    frames = [scene.frame(i) for i in range(N_FRAMES)]

    with engine_env(ENGINE_BATCHED):
        _encode(frames)  # warm caches/imports outside the timed region
        start = time.perf_counter()
        _encode(frames)
        encode_seconds = time.perf_counter() - start

        with obs.recording() as session:
            _encode(frames)
        spans_per_encode = session.tracer.completed_total
    assert spans_per_encode > 0

    # Disabled-path unit cost, averaged over enough calls to be stable.
    calls = 50_000
    assert not obs.enabled()
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("overhead.probe"):
            pass
    per_call = (time.perf_counter() - start) / calls

    overhead = per_call * spans_per_encode
    assert overhead < OVERHEAD_BUDGET * encode_seconds, (
        f"disabled obs costs {overhead * 1e6:.1f}us per encode "
        f"({spans_per_encode} spans x {per_call * 1e9:.0f}ns) against a "
        f"{encode_seconds * 1e3:.1f}ms encode"
    )


def test_disabled_counter_path_is_cheap():
    calls = 50_000
    start = time.perf_counter()
    for _ in range(calls):
        obs.counter_add("overhead.probe")
    per_call = (time.perf_counter() - start) / calls
    assert per_call < 2e-6  # generous: a no-op call must stay sub-2us


def test_span_count_is_bounded_per_encode():
    """The hot layers emit stage-level spans, not per-MB spans: a QCIF
    encode must stay in the hundreds, or the 'cheap when on' promise and
    the ring-buffer sizing both break."""
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT))
    frames = [scene.frame(i) for i in range(N_FRAMES)]
    with engine_env(ENGINE_BATCHED):
        with obs.recording() as session:
            _encode(frames)
    assert session.tracer.completed_total < 200
