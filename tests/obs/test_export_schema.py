"""Exporters and their schema validators: JSONL, Chrome trace, parts."""

from __future__ import annotations

import json

from repro.obs import recording
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    export_metrics_json,
    export_spans_jsonl,
    merge_parts,
    read_spans_jsonl,
    spans_to_jsonl,
    write_part,
)
from repro.obs.schema import (
    validate_chrome_trace,
    validate_file,
    validate_metrics_json,
    validate_trace_jsonl,
)


def sample_session():
    with recording() as session:
        with session.tracer.span("outer", {"k": "v"}):
            with session.tracer.span("inner"):
                pass
        session.registry.counter("c").add(2)
        session.registry.histogram("h").observe(0.1)
        return session.tracer.records(), session.registry.snapshot()


class TestJsonlRoundTrip:
    def test_meta_header_plus_one_line_per_span(self):
        records, _ = sample_session()
        text = spans_to_jsonl(records, {"run": "test"})
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(records)
        meta = json.loads(lines[0])
        assert meta["schema"] == "repro-obs-trace"
        assert meta["run"] == "test"

    def test_read_back_is_lossless(self, tmp_path):
        records, _ = sample_session()
        path = tmp_path / "trace.jsonl"
        export_spans_jsonl(path, records, {"run": "test"})
        meta, loaded = read_spans_jsonl(path)
        assert meta["run"] == "test"
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    def test_validator_accepts_export(self, tmp_path):
        records, _ = sample_session()
        path = tmp_path / "trace.jsonl"
        export_spans_jsonl(path, records)
        assert validate_trace_jsonl(path.read_text()) == []
        assert validate_file(path) == []

    def test_validator_rejects_garbage(self):
        assert validate_trace_jsonl("") != []
        assert validate_trace_jsonl("not json\n") != []
        bad_meta = json.dumps({"schema": "wrong", "version": 1})
        assert validate_trace_jsonl(bad_meta) != []

    def test_validator_flags_duplicate_ids_and_negative_durations(self):
        meta = json.dumps({"schema": "repro-obs-trace", "version": 1})
        span = {"name": "s", "id": "p/main:1", "t0_ns": 0, "dur_ns": -5}
        text = "\n".join([meta, json.dumps(span), json.dumps(dict(span, dur_ns=1))])
        problems = validate_trace_jsonl(text)
        assert any("negative" in p for p in problems)
        assert any("duplicate" in p for p in problems)


class TestChromeTrace:
    def test_events_have_metadata_and_complete_phases(self):
        records, _ = sample_session()
        obj = chrome_trace(records, {"run": "test"})
        phases = [event["ph"] for event in obj["traceEvents"]]
        assert "M" in phases and "X" in phases
        assert validate_chrome_trace(obj) == []

    def test_pid_tid_mapping_is_deterministic(self):
        records, _ = sample_session()
        assert chrome_trace(records) == chrome_trace(records)

    def test_timestamps_are_microseconds(self):
        records, _ = sample_session()
        obj = chrome_trace(records)
        xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in xs}
        record = {r.name: r for r in records}["outer"]
        assert by_name["outer"]["ts"] == record.start_ns / 1000.0
        assert by_name["outer"]["dur"] == record.dur_ns / 1000.0

    def test_export_validates_via_dispatcher(self, tmp_path):
        records, _ = sample_session()
        path = tmp_path / "trace.json"
        export_chrome_trace(path, records)
        assert validate_file(path) == []

    def test_validator_rejects_empty_and_bad_phase(self):
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 1}]}
        assert any("phase" in p for p in validate_chrome_trace(bad))


class TestMetricsExport:
    def test_metrics_json_round_trip_and_validate(self, tmp_path):
        _, snapshot = sample_session()
        path = tmp_path / "metrics.json"
        export_metrics_json(path, snapshot)
        body = json.loads(path.read_text())
        assert body["metrics"]["counters"]["c"] == 2
        assert validate_metrics_json(body) == []
        assert validate_file(path) == []

    def test_validator_flags_negative_counter(self):
        body = {
            "schema": "repro-obs-metrics", "version": 1,
            "metrics": {"counters": {"c": -1}, "gauges": {}, "histograms": {}},
        }
        assert any("non-negative" in p for p in validate_metrics_json(body))


class TestPartSpool:
    def test_parts_merge_spans_and_snapshots(self, tmp_path):
        records, snapshot = sample_session()
        write_part(tmp_path, "cell-a", records, snapshot)
        write_part(tmp_path, "cell-b", records, snapshot)
        merged_records, snapshots = merge_parts(tmp_path)
        assert len(merged_records) == 2 * len(records)
        assert len(snapshots) == 2

    def test_labels_with_slashes_become_safe_filenames(self, tmp_path):
        records, snapshot = sample_session()
        path = write_part(tmp_path, "encode/176x144/v1", records, snapshot)
        assert path.parent == tmp_path
        assert "/" not in path.name

    def test_unreadable_parts_are_skipped(self, tmp_path):
        records, snapshot = sample_session()
        write_part(tmp_path, "good", records, snapshot)
        (tmp_path / "part-torn.json").write_text('{"spans": [')
        merged_records, snapshots = merge_parts(tmp_path)
        assert len(merged_records) == len(records)
        assert len(snapshots) == 1

    def test_missing_spool_directory_is_empty(self, tmp_path):
        records, snapshots = merge_parts(tmp_path / "nope")
        assert records == [] and snapshots == []

    def test_spool_directory_created_on_demand(self, tmp_path):
        records, snapshot = sample_session()
        path = write_part(tmp_path / "deep" / "spool", "x", records, snapshot)
        assert path.exists()

    def test_part_files_pass_validate_file(self, tmp_path):
        records, snapshot = sample_session()
        path = write_part(tmp_path, "cell-a", records, snapshot)
        assert validate_file(path) == []

    def test_part_validator_flags_defects(self, tmp_path):
        from repro.obs.schema import validate_part

        records, snapshot = sample_session()
        path = write_part(tmp_path, "cell-a", records, snapshot)
        body = json.loads(path.read_text())
        assert validate_part(body) == []
        body["spans"].append(dict(body["spans"][0]))  # duplicate id
        del body["label"]
        problems = validate_part(body)
        assert any("duplicate span id" in p for p in problems)
        assert any("label" in p for p in problems)
