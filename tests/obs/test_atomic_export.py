"""Crash-safety of telemetry artifacts: SIGKILL mid-export, never torn.

All exporters publish through ``repro.ioutil.atomic_write`` (tmp file +
fsync + rename), so a process killed at any instant leaves either the
previous complete artifact or the new complete artifact -- never a
prefix.  The regression test here hammers a real exporter loop with
SIGKILL and validates whatever survived.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

from repro.obs import recording
from repro.obs.export import export_spans_jsonl, read_spans_jsonl
from repro.obs.schema import validate_file


def _sample_records(n_spans: int = 200):
    with recording() as session:
        for index in range(n_spans):
            with session.tracer.span(f"stage.{index % 7}", {"i": index}):
                pass
        return session.tracer.records()


def _export_forever(path_str: str, ready) -> None:
    """Child body: re-export the same trace as fast as possible."""
    records = _sample_records()
    generation = 0
    while True:
        export_spans_jsonl(
            path_str, records, {"generation": generation}
        )
        generation += 1
        ready.value = generation


class TestSigkillMidExport:
    def test_killed_exporter_never_publishes_a_torn_file(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        for round_index in range(5):
            ready = context.Value("i", 0)
            child = context.Process(
                target=_export_forever, args=(str(target), ready), daemon=True
            )
            child.start()
            deadline = time.monotonic() + 30.0
            while ready.value < 1 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert ready.value >= 1, "exporter never completed a write"
            # Kill at a slightly different point in the loop each round.
            time.sleep(0.002 * (round_index + 1))
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10.0)
            assert child.exitcode == -signal.SIGKILL

            # Whatever made it to disk must be a complete, valid trace.
            assert target.exists()
            assert validate_file(target) == []
            meta, records = read_spans_jsonl(target)
            assert len(records) == 200
            assert meta["generation"] >= 0

    def test_no_temp_files_survive_the_kill(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ready = context.Value("i", 0)
        child = context.Process(
            target=_export_forever, args=(str(target), ready), daemon=True
        )
        child.start()
        while ready.value < 2:
            time.sleep(0.001)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=10.0)
        stray = [
            p.name for p in tmp_path.iterdir() if p.name != "trace.jsonl"
        ]
        # At most one orphaned tmp file from the in-flight write; it must
        # not shadow or corrupt the published artifact.
        assert len(stray) <= 1
        assert validate_file(target) == []


class TestArtifactWritersAreAtomic:
    def test_bench_json_uses_atomic_write(self, tmp_path, monkeypatch):
        """`repro bench codec --json` goes through ioutil.atomic_write."""
        calls = []
        import repro.codec.bench as bench
        from repro import ioutil

        def spy(path, data, **kwargs):
            calls.append(Path(path))
            return original(path, data, **kwargs)

        original = ioutil.atomic_write
        monkeypatch.setattr(ioutil, "atomic_write", spy)
        out = tmp_path / "bench.json"
        rc = bench.bench_main(
            ["codec", "--frames", "2", "--width", "64", "--height", "64",
             "--repeats", "1", "--json", str(out)]
        )
        assert rc == 0
        assert out in calls
        json.loads(out.read_text())  # complete, parseable artifact
