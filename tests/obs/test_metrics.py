"""Metrics registry: counters, gauges, histograms, absorption, merging."""

from __future__ import annotations

import pytest

from repro.memsim.hierarchy import HierarchyCounters
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_gauge_set_and_high_water(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.max(5.0)
        assert gauge.value == 10.0
        gauge.max(12.0)
        assert gauge.value == 12.0

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]
        assert hist.overflow == 1
        assert hist.total == 5
        assert hist.min == 0.5
        assert hist.max == 100.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_percentiles_are_deterministic_interpolations(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(0.5)  # all in the first bucket
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 1.0
        assert hist.percentile(50) == pytest.approx(0.5)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h").percentile(99) == 0.0


class TestRegistry:
    def test_metrics_create_on_first_use_and_persist(self):
        registry = MetricsRegistry()
        registry.counter("hits").add(3)
        registry.counter("hits").add(2)
        assert registry.snapshot()["counters"] == {"hits": 5}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        body = snapshot["histograms"]["h"]
        assert body["total"] == 1
        assert list(body["buckets"]) == list(DEFAULT_BUCKETS)
        assert {"p50", "p95", "p99"} <= set(body)

    def test_absorb_hierarchy_publishes_totals_and_phases(self):
        class FakeHierarchy:
            total = HierarchyCounters(graduated_loads=100, l1_misses=7)
            phases = {
                "vop_encode": HierarchyCounters(graduated_loads=60, l1_misses=5)
            }

        registry = MetricsRegistry()
        registry.absorb_hierarchy(FakeHierarchy())
        gauges = registry.snapshot()["gauges"]
        assert gauges["memsim.graduated_loads"] == 100
        assert gauges["memsim.l1_misses"] == 7
        assert gauges["memsim.phase.vop_encode.graduated_loads"] == 60

    def test_absorb_study_telemetry(self):
        registry = MetricsRegistry()
        registry.absorb_study_telemetry(
            {
                "wall_s": 4.2,
                "totals": {"cells": 3, "done": 2, "quarantined": 1,
                           "pending": 0, "attempts": 5,
                           "retry_overhead_s": 0.7},
                "cells": {
                    "a": {"final_attempt_s": 1.0, "rss_peak_bytes": 100},
                    "b": {"final_attempt_s": 2.0, "rss_peak_bytes": 300},
                },
            }
        )
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["runner.study.done"] == 2
        assert snapshot["gauges"]["runner.study.wall_s"] == 4.2
        assert snapshot["gauges"]["runner.cell.rss_peak_bytes"] == 300
        assert snapshot["histograms"]["runner.cell.attempt_s"]["total"] == 2


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a = MetricsRegistry()
        a.counter("c").add(2)
        a.gauge("g").set(5.0)
        a.histogram("h").observe(0.3)

        b = MetricsRegistry()
        b.counter("c").add(3)
        b.gauge("g").set(4.0)
        b.histogram("h").observe(0.4)

        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        snapshot = merged.snapshot()
        assert snapshot["counters"]["c"] == 5
        assert snapshot["gauges"]["g"] == 5.0
        hist = snapshot["histograms"]["h"]
        assert hist["total"] == 2
        assert hist["sum"] == pytest.approx(0.7)
        assert hist["min"] == 0.3
        assert hist["max"] == 0.4

    def test_merge_is_commutative_for_snapshots(self):
        a = MetricsRegistry()
        a.counter("c").add(2)
        a.histogram("h").observe(0.1)
        b = MetricsRegistry()
        b.counter("c").add(7)
        b.histogram("h").observe(3.0)

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_bucket_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h")  # default buckets
        with pytest.raises(ValueError, match="bucket mismatch"):
            target.merge_snapshot(source.snapshot())
