"""Stage aggregation, self-time accounting, and boundedness calls."""

from __future__ import annotations

from repro.memsim.hierarchy import HierarchyCounters
from repro.obs.report import (
    MEMORY_BOUND_MISS_RATE,
    aggregate_stages,
    boundedness_report,
    classify_stage,
    format_stage_table,
    roots_total_ns,
)
from repro.obs.spans import SpanRecord


def span(name, span_id, parent, dur, start=0):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=parent, proc="main",
        thread="main", start_ns=start, dur_ns=dur, attrs={},
    )


def sample_tree():
    # root(100) -> a(60) -> b(25); a and b partially cover their parents.
    return [
        span("b", "m:3", "m:2", 25),
        span("a", "m:2", "m:1", 60),
        span("root", "m:1", None, 100),
    ]


class TestAggregation:
    def test_self_time_subtracts_children(self):
        rows = {r.name: r for r in aggregate_stages(sample_tree())}
        assert rows["root"].self_ns == 40
        assert rows["a"].self_ns == 35
        assert rows["b"].self_ns == 25

    def test_self_times_sum_to_root_total(self):
        """The invariant making 'stage sum vs wall-clock' checkable."""
        rows = aggregate_stages(sample_tree())
        assert sum(r.self_ns for r in rows) == roots_total_ns(sample_tree())

    def test_orphaned_children_become_roots(self):
        """A parent evicted from the ring still leaves the child charged."""
        records = [span("child", "m:9", "m:404", 50)]
        assert roots_total_ns(records) == 50
        (row,) = aggregate_stages(records)
        assert row.self_ns == 50

    def test_negative_self_time_clamped(self):
        """Parallel children can exceed the parent wall time; per-span
        self time clamps at zero instead of going negative."""
        records = [
            span("child", "m:2", "m:1", 80),
            span("child", "m:3", "m:1", 80),
            span("parent", "m:1", None, 100),
        ]
        rows = {r.name: r for r in aggregate_stages(records)}
        assert rows["parent"].self_ns == 0

    def test_rows_sorted_by_self_time(self):
        names = [r.name for r in aggregate_stages(sample_tree())]
        assert names == ["root", "a", "b"]

    def test_share_is_fraction_of_root_wall(self):
        rows = {r.name: r for r in aggregate_stages(sample_tree())}
        assert rows["root"].share == 0.4
        assert rows["a"].share == 0.35

    def test_counts_min_max(self):
        records = [
            span("s", "m:1", None, 10),
            span("s", "m:2", None, 30),
        ]
        (row,) = aggregate_stages(records)
        assert (row.count, row.min_ns, row.max_ns, row.total_ns) == (2, 10, 30, 40)


class TestTable:
    def test_table_lists_stages_and_coverage(self):
        rows = aggregate_stages(sample_tree())
        table = format_stage_table(rows, wall_s=100e-9)
        assert "root" in table and "a" in table
        assert "(sum of self times)" in table
        assert "(measured wall-clock)" in table
        assert "100.0%" in table

    def test_table_without_wall_clock(self):
        table = format_stage_table(aggregate_stages(sample_tree()))
        assert "(measured wall-clock)" not in table


class TestBoundedness:
    def test_parse_markers_win_structurally(self):
        assert classify_stage("codec.decode.vlc_parse") == "parse-bound"
        assert classify_stage("codec.encode.serialize", 0.5) == "parse-bound"

    def test_miss_rate_splits_compute_vs_memory(self):
        assert classify_stage("codec.encode.dct_quant", 0.01) == "compute-bound"
        assert (
            classify_stage("codec.encode.dct_quant", MEMORY_BOUND_MISS_RATE)
            == "memory-bound"
        )

    def test_no_counters_defaults_to_compute(self):
        assert classify_stage("codec.encode.motion_search") == "compute-bound"

    def test_report_joins_hierarchy_phase_counters(self):
        class FakeHierarchy:
            total = HierarchyCounters()
            phases = {
                "vop_decode": HierarchyCounters(
                    graduated_loads=80, graduated_stores=20, l1_misses=10
                )
            }

        records = [
            span("codec.decode.reconstruct", "m:1", None, 10),
            span("transport.channel", "m:2", None, 10),
        ]
        rows = aggregate_stages(records)
        report = dict(
            (name, (verdict, rate))
            for name, verdict, rate in boundedness_report(rows, FakeHierarchy())
        )
        verdict, rate = report["codec.decode.reconstruct"]
        assert verdict == "memory-bound" and rate == 0.1
        verdict, rate = report["transport.channel"]
        assert verdict == "compute-bound" and rate is None
