"""Span tracer: nesting, deterministic identity, ring bound, unwinding."""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import SpanTracer


def run_nested(tracer: SpanTracer) -> None:
    with tracer.span("outer", {"k": 1}):
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            pass


class TestNesting:
    def test_parent_links_rebuild_the_tree(self):
        tracer = SpanTracer()
        run_nested(tracer)
        records = tracer.records()
        by_name = {record.name: record for record in records}
        assert by_name["inner.a"].parent_id == by_name["outer"].span_id
        assert by_name["inner.b"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_children_commit_before_parents(self):
        tracer = SpanTracer()
        run_nested(tracer)
        names = [record.name for record in tracer.records()]
        assert names == ["inner.a", "inner.b", "outer"]

    def test_parent_duration_covers_children(self):
        tracer = SpanTracer()
        run_nested(tracer)
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].dur_ns >= (
            by_name["inner.a"].dur_ns + by_name["inner.b"].dur_ns
        )

    def test_attrs_recorded(self):
        tracer = SpanTracer()
        run_nested(tracer)
        outer = [r for r in tracer.records() if r.name == "outer"][0]
        assert outer.attrs == {"k": 1}


class TestDeterministicIdentity:
    def test_same_workload_same_identity_columns(self):
        """Two runs differ only in timestamps -- never in id/parent/name."""
        shapes = []
        for _ in range(2):
            tracer = SpanTracer(proc_label="p0")
            run_nested(tracer)
            shapes.append(
                [
                    (r.name, r.span_id, r.parent_id, r.proc, r.thread)
                    for r in tracer.records()
                ]
            )
        assert shapes[0] == shapes[1]

    def test_ids_carry_proc_thread_and_sequence(self):
        tracer = SpanTracer(proc_label="worker-3")
        with tracer.span("x"):
            pass
        (record,) = tracer.records()
        assert record.span_id == "worker-3/main:1"

    def test_identity_not_derived_from_wall_clock(self):
        """A tracer with a frozen clock still produces the same ids."""
        tracer = SpanTracer(clock=lambda: 0)
        run_nested(tracer)
        assert [r.span_id for r in tracer.records()] == [
            "main/main:2", "main/main:3", "main/main:1",
        ]

    def test_thread_spans_use_thread_label(self):
        tracer = SpanTracer()
        done = threading.Event()

        def work():
            with tracer.span("threaded"):
                pass
            done.set()

        thread = threading.Thread(target=work, name="pump-1")
        thread.start()
        thread.join()
        assert done.is_set()
        (record,) = tracer.records()
        assert record.thread == "pump-1"
        assert record.span_id == "main/pump-1:1"


class TestRingBuffer:
    def test_limit_bounds_memory_and_counts_drops(self):
        tracer = SpanTracer(limit=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        records = tracer.records()
        assert len(records) == 4
        assert [r.name for r in records] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped_spans == 6
        assert tracer.completed_total == 10

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(limit=0)

    def test_drain_clears_but_preserves_order(self):
        tracer = SpanTracer()
        run_nested(tracer)
        drained = tracer.drain()
        assert [r.name for r in drained] == ["inner.a", "inner.b", "outer"]
        assert tracer.records() == []


class TestErrorPaths:
    def test_exception_still_commits_the_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.records()] == ["fails"]

    def test_leaked_inner_span_does_not_corrupt_stack(self):
        """Manually entered (never exited) spans are unwound by the
        enclosing span's exit -- the decoder's parse loop relies on this."""
        tracer = SpanTracer()
        with tracer.span("outer"):
            tracer.span("leaked").__enter__()  # never exited
        with tracer.span("after"):
            pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["after"].parent_id is None

    def test_traced_decorator(self):
        tracer = SpanTracer()

        @tracer.traced("fn.region")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert [r.name for r in tracer.records()] == ["fn.region"]

    def test_epoch_relative_timestamps(self):
        tracer = SpanTracer()
        run_nested(tracer)
        for record in tracer.records():
            assert record.start_ns >= 0
            assert record.dur_ns >= 0
