"""Tests for binary shape coding and repetitive padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.padding import EXTENDED_FILL, repetitive_pad
from repro.codec.predict import DEFAULT_DC, DcPredictor
from repro.codec.shape import (
    BabMode,
    bab_mode,
    decode_shape_plane,
    encode_shape_plane,
)


def ellipse_mask(height, width, cy, cx, ry, rx):
    ys, xs = np.mgrid[0:height, 0:width]
    mask = (((xs - cx) / rx) ** 2 + ((ys - cy) / ry) ** 2) <= 1.0
    return mask.astype(np.uint8) * 255


def shape_roundtrip(mask):
    writer = BitWriter()
    stats = encode_shape_plane(writer, mask)
    reader = BitReader(writer.getvalue())
    decoded = decode_shape_plane(reader, mask.shape[1], mask.shape[0])
    return decoded, stats


class TestBabMode:
    def test_classification(self):
        assert bab_mode(np.zeros((16, 16), dtype=np.uint8)) is BabMode.TRANSPARENT
        assert bab_mode(np.full((16, 16), 255, dtype=np.uint8)) is BabMode.OPAQUE
        mixed = np.zeros((16, 16), dtype=np.uint8)
        mixed[0, 0] = 255
        assert bab_mode(mixed) is BabMode.CODED


class TestShapeRoundTrip:
    def test_all_transparent(self):
        mask = np.zeros((32, 32), dtype=np.uint8)
        decoded, stats = shape_roundtrip(mask)
        assert np.array_equal(decoded, mask)
        assert stats.transparent_babs == 4
        assert stats.coded_babs == 0

    def test_all_opaque(self):
        mask = np.full((32, 48), 255, dtype=np.uint8)
        decoded, stats = shape_roundtrip(mask)
        assert np.array_equal(decoded, mask)
        assert stats.opaque_babs == 6

    def test_ellipse_lossless(self):
        mask = ellipse_mask(64, 64, 32, 32, 20, 24)
        decoded, stats = shape_roundtrip(mask)
        assert np.array_equal(decoded, mask)
        assert stats.coded_babs > 0
        assert stats.opaque_babs > 0

    def test_boundary_babs_only_are_cae_coded(self):
        mask = ellipse_mask(96, 96, 48, 48, 40, 40)
        _, stats = shape_roundtrip(mask)
        total = stats.transparent_babs + stats.opaque_babs + stats.coded_babs
        assert total == 36
        assert stats.coded_pixels == stats.coded_babs * 256

    def test_cae_compresses_smooth_shapes(self):
        mask = ellipse_mask(64, 64, 32, 32, 24, 24)
        _, stats = shape_roundtrip(mask)
        # Smooth contours: far fewer than 1 bit per coded pixel.
        assert stats.cae_bytes * 8 < stats.coded_pixels / 2

    def test_misaligned_plane_rejected(self):
        with pytest.raises(ValueError):
            encode_shape_plane(BitWriter(), np.zeros((10, 16), dtype=np.uint8))

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_random_masks_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        # Blocky random masks: random 4x4 tiles scaled up, so BABs hit all
        # three modes including ragged coded blocks.
        coarse = rng.integers(0, 2, (8, 8)).astype(np.uint8)
        mask = np.kron(coarse, np.ones((8, 8), dtype=np.uint8)) * 255
        decoded, _ = shape_roundtrip(mask)
        assert np.array_equal(decoded, mask)


class TestRepetitivePadding:
    def test_fully_opaque_is_identity(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        mask = np.full((8, 8), 255, dtype=np.uint8)
        assert np.array_equal(repetitive_pad(plane, mask), plane)

    def test_horizontal_fill_between(self):
        plane = np.zeros((1, 5), dtype=np.uint8)
        plane[0, 0] = 10
        plane[0, 4] = 20
        mask = np.array([[255, 0, 0, 0, 255]], dtype=np.uint8)
        padded = repetitive_pad(plane, mask)
        assert padded[0, 2] == 15  # bracketed -> average

    def test_one_sided_fill_replicates(self):
        plane = np.zeros((1, 4), dtype=np.uint8)
        plane[0, 0] = 99
        mask = np.array([[255, 0, 0, 0]], dtype=np.uint8)
        assert (repetitive_pad(plane, mask)[0, 1:] == 99).all()

    def test_vertical_pass_after_horizontal(self):
        plane = np.zeros((3, 2), dtype=np.uint8)
        plane[0, 0] = 40
        mask = np.zeros((3, 2), dtype=np.uint8)
        mask[0, 0] = 255
        padded = repetitive_pad(plane, mask)
        assert (padded == 40).all()

    def test_empty_mask_extended_fill(self):
        plane = np.zeros((4, 4), dtype=np.uint8)
        mask = np.zeros((4, 4), dtype=np.uint8)
        assert (repetitive_pad(plane, mask) == EXTENDED_FILL).all()

    def test_opaque_pixels_never_change(self, rng):
        plane = rng.integers(0, 256, (32, 32)).astype(np.uint8)
        mask = ellipse_mask(32, 32, 16, 16, 10, 12)
        padded = repetitive_pad(plane, mask)
        assert np.array_equal(padded[mask != 0], plane[mask != 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            repetitive_pad(np.zeros((4, 4)), np.zeros((4, 5)))

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_all_pixels_defined_and_in_range(self, seed):
        rng = np.random.default_rng(seed)
        plane = rng.integers(0, 256, (24, 24)).astype(np.uint8)
        mask = (rng.random((24, 24)) < 0.3).astype(np.uint8) * 255
        padded = repetitive_pad(plane, mask)
        assert padded.dtype == plane.dtype
        assert padded.min() >= 0
        assert padded.max() <= 255


class TestDcPredictor:
    def test_default_for_first_block(self):
        predictor = DcPredictor(4, 4)
        assert predictor.predict(0, 0) == DEFAULT_DC

    def test_predicts_from_left(self):
        predictor = DcPredictor(2, 2)
        predictor.store(0, 0, 50)
        # above and above-left are defaults (equal) -> horizontal gradient 0
        # is NOT < vertical gradient |default-50|... choose left or above by
        # rule; just check it returns one of the stored/default values.
        assert predictor.predict(0, 1) in (50, DEFAULT_DC)

    def test_adaptive_direction(self):
        predictor = DcPredictor(3, 3)
        predictor.store(0, 0, 100)  # above-left of (1,1)
        predictor.store(0, 1, 100)  # above of (1,1)
        predictor.store(1, 0, 30)  # left of (1,1)
        # |above_left - left| = 70 >= |above_left - above| = 0 -> predict left.
        assert predictor.predict(1, 1) == 30
        predictor2 = DcPredictor(3, 3)
        predictor2.store(0, 0, 100)
        predictor2.store(0, 1, 30)
        predictor2.store(1, 0, 100)
        # |above_left - left| = 0 < |above_left - above| = 70 -> predict above.
        assert predictor2.predict(1, 1) == 30

    def test_bounds_checked(self):
        predictor = DcPredictor(2, 2)
        with pytest.raises(IndexError):
            predictor.store(2, 0, 1)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            DcPredictor(0, 4)
