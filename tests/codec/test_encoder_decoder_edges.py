"""Edge cases and error handling for the encoder/decoder pair."""

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder, VopType
from repro.codec.bitstream import BitWriter, VO_STARTCODE, VOL_STARTCODE
from repro.video import SceneSpec, SyntheticScene
from repro.video.yuv import YuvFrame

WIDTH, HEIGHT = 64, 48


def frames(n, width=WIDTH, height=HEIGHT):
    scene = SyntheticScene(SceneSpec.default(width, height))
    return [scene.frame(i) for i in range(n)]


class TestIncrementalApi:
    def test_encode_next_sequence(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
        encoder = VopEncoder(config)
        encoder.begin_sequence(frames(5))
        stats = []
        while (vop := encoder.encode_next()) is not None:
            stats.append(vop)
        encoded = encoder.finish_sequence()
        assert len(stats) == 5
        assert [v.coded_index for v in stats] == list(range(5))
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert len(decoded.frames) == 5

    def test_finish_before_done_rejected(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1)
        encoder = VopEncoder(config)
        encoder.begin_sequence(frames(3))
        encoder.encode_next()
        with pytest.raises(RuntimeError):
            encoder.finish_sequence()

    def test_interleaved_encoders(self):
        """Two VOs interleaved VOP-by-VOP, as a multi-VO system would run."""
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
        encoders = [VopEncoder(config) for _ in range(2)]
        inputs = frames(4)
        for encoder in encoders:
            encoder.begin_sequence(inputs)
        done = [False, False]
        while not all(done):
            for index, encoder in enumerate(encoders):
                if encoder.encode_next() is None:
                    done[index] = True
        streams = [encoder.finish_sequence() for encoder in encoders]
        assert streams[0].data == streams[1].data  # same input, same config

    def test_incremental_matches_batch(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
        batch = VopEncoder(config).encode_sequence(frames(5))
        incremental = VopEncoder(config)
        incremental.begin_sequence(frames(5))
        while incremental.encode_next() is not None:
            pass
        assert incremental.finish_sequence().data == batch.data


class TestDecoderErrorHandling:
    def _valid_stream(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1)
        return VopEncoder(config).encode_sequence(frames(3)).data

    def test_truncated_stream_raises(self):
        data = self._valid_stream()
        with pytest.raises((EOFError, ValueError)):
            VopDecoder().decode_sequence(data[: len(data) // 2])

    def test_missing_vol_header(self):
        writer = BitWriter()
        writer.write_startcode(VO_STARTCODE)
        writer.write_ue(0)
        with pytest.raises(ValueError, match="VOL"):
            VopDecoder().decode_sequence(writer.getvalue())

    def test_empty_stream(self):
        with pytest.raises((ValueError, EOFError)):
            VopDecoder().decode_sequence(b"")

    def test_vop_count_mismatch_detected(self):
        writer = BitWriter()
        writer.write_startcode(VO_STARTCODE)
        writer.write_ue(0)
        writer.write_startcode(VOL_STARTCODE)
        writer.write_ue(0)
        writer.write_ue(WIDTH)
        writer.write_ue(HEIGHT)
        writer.write_bit(0)
        writer.write_bits(2, 2)  # quant method
        writer.write_bit(0)  # no resync markers
        writer.write_ue(3)  # promises 3 VOPs, delivers none
        with pytest.raises(ValueError, match="expected 3"):
            VopDecoder().decode_sequence(writer.getvalue())


class TestContentEdgeCases:
    def test_single_macroblock_frame(self):
        config = CodecConfig(16, 16, qp=8, gop_size=2, m_distance=1)
        tiny = [YuvFrame.blank(16, 16, luma=100), YuvFrame.blank(16, 16, luma=110)]
        encoded = VopEncoder(config).encode_sequence(tiny)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert len(decoded.frames) == 2
        assert np.array_equal(decoded.frames[1].y, encoded.reconstructions[1].y)

    def test_extreme_pixel_values(self):
        config = CodecConfig(32, 32, qp=4, gop_size=1, m_distance=1)
        extreme = YuvFrame(
            np.tile(np.array([[0, 255]], dtype=np.uint8), (32, 16)),
            np.zeros((16, 16), dtype=np.uint8),
            np.full((16, 16), 255, dtype=np.uint8),
        )
        encoded = VopEncoder(config).encode_sequence([extreme])
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)
        assert decoded.frames[0].y.min() >= 0
        assert decoded.frames[0].y.max() <= 255

    def test_coarsest_quantizer(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=31, gop_size=4, m_distance=1)
        encoded = VopEncoder(config).encode_sequence(frames(3))
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[2].y, encoded.reconstructions[2].y)

    def test_finest_quantizer(self):
        config = CodecConfig(32, 32, qp=1, gop_size=1, m_distance=1)
        encoded = VopEncoder(config).encode_sequence(frames(1, 32, 32))
        # Near-lossless at qp=1.
        from repro.video import psnr

        assert psnr(frames(1, 32, 32)[0].y, encoded.reconstructions[0].y) > 40

    def test_large_motion_uses_full_window(self, rng):
        """An object moving faster than the search range still codes fine
        (intra fallback), and the stream round-trips."""
        scene_a = YuvFrame.blank(WIDTH, HEIGHT, luma=60)
        scene_b = YuvFrame(
            rng.integers(0, 256, (HEIGHT, WIDTH)).astype(np.uint8),
            rng.integers(0, 256, (HEIGHT // 2, WIDTH // 2)).astype(np.uint8),
            rng.integers(0, 256, (HEIGHT // 2, WIDTH // 2)).astype(np.uint8),
        )
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1)
        encoded = VopEncoder(config).encode_sequence([scene_a, scene_b])
        p_vop = encoded.stats.vops[1]
        assert p_vop.intra_mbs > 0  # prediction fails -> intra refresh
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[1].y, encoded.reconstructions[1].y)

    def test_gop_boundary_refresh(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=2, m_distance=1)
        encoded = VopEncoder(config).encode_sequence(frames(6))
        types = [v.vop_type for v in sorted(encoded.stats.vops, key=lambda v: v.display_index)]
        assert types[0] is VopType.I
        assert types[2] is VopType.I
        assert types[4] is VopType.I
