"""Tests for the DCT, quantization, zigzag and run-level layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.dct import (
    BLOCK,
    blocks_from_plane,
    forward_dct,
    inverse_dct,
    plane_from_blocks,
)
from repro.codec.quant import (
    INVERSE_ZIGZAG,
    ZIGZAG,
    dequantize,
    events_to_levels,
    inverse_zigzag_scan,
    quantize,
    run_level_events,
    zigzag_scan,
)

uint8_blocks = arrays(np.uint8, (BLOCK, BLOCK))


class TestDct:
    def test_flat_block_has_only_dc(self):
        block = np.full((8, 8), 100.0)
        coefficients = forward_dct(block)
        assert coefficients[0, 0] == pytest.approx(800.0)
        assert np.abs(coefficients.ravel()[1:]).max() < 1e-9

    def test_dc_value_is_8x_mean(self, rng):
        block = rng.uniform(0, 255, (8, 8))
        assert forward_dct(block)[0, 0] == pytest.approx(8 * block.mean())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            forward_dct(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_dct(np.zeros((8, 4)))

    def test_batched_blocks(self, rng):
        blocks = rng.uniform(0, 255, (5, 3, 8, 8))
        coefficients = forward_dct(blocks)
        assert coefficients.shape == blocks.shape
        assert np.allclose(inverse_dct(coefficients), blocks, atol=1e-9)

    @given(uint8_blocks)
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_exact(self, block):
        recovered = inverse_dct(forward_dct(block))
        assert np.allclose(recovered, block, atol=1e-8)

    @given(uint8_blocks)
    @settings(max_examples=60, deadline=None)
    def test_property_energy_conservation(self, block):
        """Orthonormal transform: Parseval equality."""
        pixels = block.astype(np.float64)
        coefficients = forward_dct(pixels)
        assert np.sum(pixels**2) == pytest.approx(np.sum(coefficients**2), rel=1e-9)


class TestPlaneTiling:
    def test_roundtrip(self, rng):
        plane = rng.integers(0, 256, (32, 48)).astype(np.uint8)
        assert np.array_equal(plane_from_blocks(blocks_from_plane(plane)), plane)

    def test_block_content_matches_slice(self):
        plane = np.arange(16 * 16, dtype=np.uint8).reshape(16, 16)
        blocks = blocks_from_plane(plane)
        assert np.array_equal(blocks[0, 1], plane[0:8, 8:16])

    def test_rejects_misaligned_plane(self):
        with pytest.raises(ValueError):
            blocks_from_plane(np.zeros((12, 16)))


class TestZigzag:
    def test_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))
        assert np.array_equal(ZIGZAG[INVERSE_ZIGZAG], np.arange(64))

    def test_first_entries(self):
        # Classic zigzag starts (0,0), (0,1), (1,0), (2,0), (1,1), (0,2)...
        assert ZIGZAG[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_roundtrip(self):
        block = np.arange(64).reshape(8, 8)
        assert np.array_equal(inverse_zigzag_scan(zigzag_scan(block)), block)

    def test_batched(self):
        blocks = np.arange(2 * 64).reshape(2, 8, 8)
        scanned = zigzag_scan(blocks)
        assert scanned.shape == (2, 64)
        assert np.array_equal(inverse_zigzag_scan(scanned), blocks)


class TestQuantization:
    def test_qp_validated(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((8, 8)), 0, intra=True)
        with pytest.raises(ValueError):
            dequantize(np.zeros((8, 8), dtype=np.int32), 32, intra=False)

    def test_intra_dc_uses_dc_scaler(self):
        block = np.zeros((8, 8))
        block[0, 0] = 800.0
        levels = quantize(block, 10, intra=True)
        assert levels[0, 0] == 100
        assert dequantize(levels, 10, intra=True)[0, 0] == 800.0

    def test_inter_dead_zone(self):
        block = np.full((8, 8), 3.0)
        assert not quantize(block, 8, intra=False).any()

    def test_zero_maps_to_zero(self):
        levels = quantize(np.zeros((8, 8)), 5, intra=False)
        assert not dequantize(levels, 5, intra=False).any()

    @given(
        qp=st.integers(min_value=1, max_value=31),
        value=st.floats(min_value=-2000, max_value=2000),
        intra=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_reconstruction_error_bounded(self, qp, value, intra):
        """|reconstruction - original| <= quantizer step size (AC terms)."""
        block = np.zeros((8, 8))
        block[3, 4] = value
        levels = quantize(block, qp, intra=intra)
        recon = dequantize(levels, qp, intra=intra)
        assert abs(recon[3, 4] - value) <= 2 * qp + qp / 2 + 1

    @given(qp=st.integers(min_value=1, max_value=31))
    @settings(max_examples=31, deadline=None)
    def test_property_sign_preserved(self, qp):
        block = np.zeros((8, 8))
        block[1, 1] = 500.0
        block[2, 2] = -500.0
        recon = dequantize(quantize(block, qp, intra=False), qp, intra=False)
        assert recon[1, 1] > 0
        assert recon[2, 2] < 0


class TestRunLevel:
    def test_empty_block(self):
        assert run_level_events(np.zeros(64, dtype=np.int32)) == []

    def test_single_dc(self):
        scanned = np.zeros(64, dtype=np.int32)
        scanned[0] = 7
        assert run_level_events(scanned) == [(1, 0, 7)]

    def test_runs_and_last_flag(self):
        scanned = np.zeros(64, dtype=np.int32)
        scanned[0] = 3
        scanned[5] = -2
        events = run_level_events(scanned)
        assert events == [(0, 0, 3), (1, 4, -2)]

    def test_events_to_levels_roundtrip(self):
        scanned = np.zeros(64, dtype=np.int32)
        scanned[[0, 7, 63]] = [5, -1, 2]
        assert np.array_equal(events_to_levels(run_level_events(scanned)), scanned)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            events_to_levels([(0, 63, 1), (1, 5, 2)])

    def test_inconsistent_last_rejected(self):
        with pytest.raises(ValueError):
            events_to_levels([(1, 0, 1), (1, 0, 2)])

    @given(
        arrays(
            np.int32,
            64,
            elements=st.integers(min_value=-100, max_value=100),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_run_level_roundtrip(self, scanned):
        events = run_level_events(scanned)
        if events:
            assert np.array_equal(events_to_levels(events), scanned)
        else:
            assert not scanned.any()
