"""The typed BitstreamError hierarchy and the decode resource caps.

The hierarchy is the decoder's public robustness contract: every
rejection is a ``BitstreamError``, and each subclass also inherits the
builtin exception (``ValueError``/``EOFError``) that older callers
already catch -- hardening must not break existing error handling.
"""

from __future__ import annotations

import pytest

from repro.codec import (
    ArithCoderError,
    BitstreamError,
    CodecConfig,
    DecodeBudgetExceededError,
    HeaderError,
    MalformedStreamError,
    ShapeError,
    TruncatedStreamError,
    VlcError,
    VopDecoder,
    VopEncoder,
)
from repro.codec.arith import AdaptiveBinaryModel
from repro.codec.bitstream import (
    VO_STARTCODE,
    VOL_STARTCODE,
    BitReader,
    BitWriter,
)
from repro.codec.decoder import MAX_DIMENSION, MAX_SEQUENCE_PIXELS, MAX_VOPS
from repro.codec.vlc import COEFF_TABLE
from repro.video.yuv import YuvFrame


class TestHierarchy:
    def test_typed_errors_are_bitstream_errors(self):
        for cls in (
            TruncatedStreamError,
            MalformedStreamError,
            HeaderError,
            VlcError,
            ShapeError,
            ArithCoderError,
            DecodeBudgetExceededError,
        ):
            assert issubclass(cls, BitstreamError)

    def test_builtin_compatibility(self):
        """Callers catching the pre-hardening builtins still catch
        everything the hardened decoder raises."""
        assert issubclass(TruncatedStreamError, EOFError)
        for cls in (
            MalformedStreamError,
            HeaderError,
            VlcError,
            ShapeError,
            ArithCoderError,
            DecodeBudgetExceededError,
        ):
            assert issubclass(cls, ValueError)

    def test_bit_position_is_carried(self):
        error = MalformedStreamError("bad", bit_position=137)
        assert error.bit_position == 137
        assert BitstreamError("x").bit_position is None


class TestPrimitiveRejections:
    def test_reading_past_the_end_is_truncation(self):
        reader = BitReader(b"\xff")
        with pytest.raises(TruncatedStreamError) as excinfo:
            reader.read_bits(16)
        assert excinfo.value.bit_position is not None

    def test_unbounded_exp_golomb_is_malformed(self):
        reader = BitReader(b"\x00" * 32)  # 256 leading zeros: no valid code
        with pytest.raises(MalformedStreamError):
            reader.read_ue()

    def test_vlc_decode_on_truncated_stream(self):
        # The canonical table is complete (Kraft equality) so every long
        # enough bit pattern decodes; running dry mid-code is truncation.
        with pytest.raises(TruncatedStreamError):
            COEFF_TABLE.decode(BitReader(b""))

    def test_invalid_vlc_codeword(self):
        from repro.codec.vlc import HuffmanTable

        table = HuffmanTable([(0, 1.0), (1, 1.0)])
        table._tree[1] = None  # prune a branch: now an incomplete tree
        with pytest.raises(VlcError) as excinfo:
            table.decode(BitReader(b"\xff"))
        assert excinfo.value.bit_position is not None

    def test_arith_context_out_of_range(self):
        model = AdaptiveBinaryModel(4)
        with pytest.raises(ArithCoderError):
            model.p_zero(9)


def _header_stream(width: int, height: int, n_frames: int) -> bytes:
    """A syntactically well-formed VO+VOL header claiming the given geometry."""
    writer = BitWriter()
    writer.write_startcode(VO_STARTCODE)
    writer.write_ue(0)  # vo_id
    writer.write_startcode(VOL_STARTCODE)
    writer.write_ue(0)  # vol_id
    writer.write_ue(width)
    writer.write_ue(height)
    writer.write_bit(0)  # rectangular
    writer.write_bits(1, 2)  # quant_method
    writer.write_bit(0)  # no resync markers
    writer.write_ue(n_frames)
    return writer.getvalue()


class TestHeaderCaps:
    """Resource caps that keep hostile headers from reserving gigabytes."""

    def test_oversized_dimension_rejected(self):
        data = _header_stream(MAX_DIMENSION + 16, 32, 1)
        with pytest.raises(HeaderError, match="outside"):
            VopDecoder().decode_sequence(data)

    def test_misaligned_dimension_rejected(self):
        data = _header_stream(33, 32, 1)
        with pytest.raises(HeaderError, match="multiple"):
            VopDecoder().decode_sequence(data)

    def test_vop_count_cap(self):
        data = _header_stream(32, 32, MAX_VOPS + 1)
        with pytest.raises(HeaderError, match="exceeds"):
            VopDecoder().decode_sequence(data)

    def test_sequence_pixel_budget(self):
        width = height = 4096
        n_frames = MAX_SEQUENCE_PIXELS // (width * height) + 1
        assert n_frames <= MAX_VOPS
        data = _header_stream(width, height, n_frames)
        with pytest.raises(HeaderError, match="memory budget"):
            VopDecoder().decode_sequence(data)

    def test_caps_also_hold_in_tolerant_mode(self):
        """Concealment must not conceal a resource-exhaustion header."""
        data = _header_stream(4096, 4096, MAX_VOPS)
        with pytest.raises(HeaderError):
            VopDecoder().decode_sequence(data, tolerate_errors=True)

    def test_legitimate_stream_still_decodes(self):
        config = CodecConfig(32, 32, qp=12, gop_size=2, m_distance=1)
        frames = [YuvFrame.blank(32, 32, luma=90 + 10 * i) for i in range(2)]
        encoded = VopEncoder(config).encode_sequence(frames)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert len(decoded.frames) == 2
