"""Hypothesis roundtrip properties for the low-level coding primitives.

Each property drives a primitive with adversarial inputs well outside
what the encoder's own traffic exercises: whole run-level event lists
(not single events), arbitrary coefficient blocks through the zigzag
scan, and arbitrary alpha masks through the CAE shape coder.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.quant import (
    events_to_levels,
    inverse_zigzag_scan,
    run_level_events,
    zigzag_scan,
)
from repro.codec.shape import decode_shape_plane, encode_shape_plane
from repro.codec.vlc import decode_coefficient_event, encode_coefficient_event

# Sparse-ish 64-coefficient vectors: mostly zero, levels spanning both the
# Huffman table's dense region and the FLC escape range (|level| < 4096).
_levels = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=-4095, max_value=4095).filter(lambda v: v != 0),
    ),
    max_size=12,
).map(
    lambda pairs: _vector_from_pairs(pairs)
)


def _vector_from_pairs(pairs: list[tuple[int, int]]) -> np.ndarray:
    vector = np.zeros(64, dtype=np.int32)
    for position, level in pairs:
        vector[position] = level
    return vector


class TestVlcEventListRoundtrip:
    @given(vector=_levels)
    @settings(max_examples=100, deadline=None)
    def test_event_list_roundtrips_through_bitstream(self, vector):
        events = run_level_events(vector)
        writer = BitWriter()
        for last, run, level in events:
            encode_coefficient_event(writer, last, run, level)
        reader = BitReader(writer.getvalue())
        decoded = [decode_coefficient_event(reader) for _ in events]
        assert decoded == events
        assert np.array_equal(events_to_levels(decoded), vector)

    @given(vector=_levels)
    @settings(max_examples=100, deadline=None)
    def test_event_representation_roundtrips(self, vector):
        assert np.array_equal(events_to_levels(run_level_events(vector)), vector)


class TestZigzagRoundtrip:
    @given(block=arrays(np.int32, (8, 8)))
    @settings(max_examples=100, deadline=None)
    def test_scan_roundtrips_any_block(self, block):
        assert np.array_equal(inverse_zigzag_scan(zigzag_scan(block)), block)

    @given(blocks=arrays(np.int16, (3, 2, 8, 8)))
    @settings(max_examples=50, deadline=None)
    def test_scan_roundtrips_batched_blocks(self, blocks):
        assert np.array_equal(inverse_zigzag_scan(zigzag_scan(blocks)), blocks)

    @given(scanned=arrays(np.int32, (64,)))
    @settings(max_examples=50, deadline=None)
    def test_inverse_then_forward(self, scanned):
        assert np.array_equal(zigzag_scan(inverse_zigzag_scan(scanned)), scanned)


class TestShapePlaneRoundtrip:
    @given(bits=arrays(np.bool_, (32, 16)))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_mask_roundtrips(self, bits):
        mask = bits.astype(np.uint8) * 255
        writer = BitWriter()
        encode_shape_plane(writer, mask)
        decoded = decode_shape_plane(BitReader(writer.getvalue()), 16, 32)
        assert np.array_equal(decoded, mask)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           density=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_random_density_mask_roundtrips(self, seed, density):
        rng = np.random.default_rng(seed)
        mask = (rng.random((16, 32)) < density).astype(np.uint8) * 255
        writer = BitWriter()
        encode_shape_plane(writer, mask)
        decoded = decode_shape_plane(BitReader(writer.getvalue()), 32, 16)
        assert np.array_equal(decoded, mask)
