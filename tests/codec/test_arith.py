"""Tests for the adaptive binary arithmetic coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.arith import (
    AdaptiveBinaryModel,
    ArithDecoder,
    ArithEncoder,
)


def roundtrip(bits, contexts, n_contexts=4):
    encoder = ArithEncoder(AdaptiveBinaryModel(n_contexts))
    for bit, context in zip(bits, contexts):
        encoder.encode(bit, context)
    blob = encoder.finish()
    decoder = ArithDecoder(blob, AdaptiveBinaryModel(n_contexts))
    decoded = [decoder.decode(context) for context in contexts]
    return decoded, blob


class TestModel:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AdaptiveBinaryModel(0)

    def test_initial_probability_is_half(self):
        model = AdaptiveBinaryModel(2)
        assert model.p_zero(0) == 1 << 15

    def test_adaptation_shifts_probability(self):
        model = AdaptiveBinaryModel(1)
        for _ in range(50):
            model.update(0, 0)
        assert model.p_zero(0) > 1 << 15

    def test_probability_clamped(self):
        model = AdaptiveBinaryModel(1)
        for _ in range(100_000):
            model.update(0, 1)
        assert model.p_zero(0) >= 32
        assert model.p_zero(0) <= (1 << 16) - 32

    def test_contexts_are_independent(self):
        model = AdaptiveBinaryModel(2)
        for _ in range(50):
            model.update(0, 0)
        assert model.p_zero(1) == 1 << 15


class TestRoundTrip:
    def test_empty_stream(self):
        decoded, _ = roundtrip([], [])
        assert decoded == []

    def test_single_bits(self):
        for bit in (0, 1):
            decoded, _ = roundtrip([bit], [0])
            assert decoded == [bit]

    def test_alternating(self):
        bits = [i % 2 for i in range(500)]
        decoded, _ = roundtrip(bits, [0] * 500)
        assert decoded == bits

    def test_skewed_stream_compresses(self):
        bits = [0] * 2000 + [1]
        decoded, blob = roundtrip(bits, [0] * 2001)
        assert decoded == bits
        assert len(blob) < 2001 // 8  # far below 1 bit/symbol

    def test_random_stream_does_not_compress_much(self, rng):
        bits = rng.integers(0, 2, size=4000).tolist()
        decoded, blob = roundtrip(bits, [0] * 4000)
        assert decoded == bits
        assert len(blob) >= 4000 // 8 - 8

    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=600,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_any_stream(self, data):
        bits = [bit for bit, _ in data]
        contexts = [context for _, context in data]
        decoded, _ = roundtrip(bits, contexts)
        assert decoded == bits

    def test_context_modelling_beats_single_context(self, rng):
        """Bits perfectly predictable per context must compress better with
        per-context models than with one shared context."""
        contexts = rng.integers(0, 2, size=3000).tolist()
        bits = contexts[:]  # bit == context: deterministic given context
        _, blob_ctx = roundtrip(bits, contexts, n_contexts=2)
        _, blob_one = roundtrip(bits, [0] * 3000, n_contexts=1)
        assert len(blob_ctx) < len(blob_one)

    def test_bits_coded_counter(self):
        encoder = ArithEncoder(AdaptiveBinaryModel(1))
        for _ in range(17):
            encoder.encode(1, 0)
        assert encoder.bits_coded == 17
