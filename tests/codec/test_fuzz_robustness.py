"""Fuzz-style robustness: hostile bitstreams must fail cleanly.

The decoder exposes `tolerate_errors` for resilient decoding; in strict
mode, arbitrary garbage must raise a controlled exception (ValueError /
EOFError), never hang, loop forever, or corrupt interpreter state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.video import SceneSpec, SyntheticScene


def valid_stream():
    scene = SyntheticScene(SceneSpec.default(48, 32))
    frames = [scene.frame(i) for i in range(2)]
    config = CodecConfig(48, 32, qp=8, gop_size=2, m_distance=1)
    return VopEncoder(config).encode_sequence(frames).data


class TestGarbageStreams:
    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_property_random_bytes_fail_cleanly(self, data):
        try:
            VopDecoder().decode_sequence(data)
        except (ValueError, EOFError, IndexError):
            pass  # controlled failure is the contract

    @given(
        position=st.floats(min_value=0.0, max_value=0.99),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_single_byte_mutations(self, position, value):
        """Mutating any single byte either still decodes (to wrong pixels)
        or fails cleanly -- never hangs or crashes uncontrolled."""
        data = bytearray(valid_stream())
        data[int(len(data) * position)] = value
        try:
            decoded = VopDecoder().decode_sequence(bytes(data))
            for frame in decoded.frames:
                assert frame.y.dtype == np.uint8
        except (ValueError, EOFError, IndexError):
            pass

    @given(cut=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_property_truncations(self, cut):
        data = valid_stream()
        truncated = data[: int(len(data) * cut)]
        try:
            VopDecoder().decode_sequence(truncated)
        except (ValueError, EOFError, IndexError):
            pass

    def test_tolerant_mode_never_raises_on_mutations(self):
        """With resync markers + tolerant decoding, every single-byte
        mutation inside the payload yields a full-length output."""
        scene = SyntheticScene(SceneSpec.default(48, 32))
        frames = [scene.frame(i) for i in range(2)]
        config = CodecConfig(48, 32, qp=8, gop_size=2, m_distance=1,
                             resync_markers=True)
        data = VopEncoder(config).encode_sequence(frames).data
        header_guard = 24  # keep VO/VOL headers intact
        for offset in range(header_guard, len(data) - 8, max(1, len(data) // 40)):
            broken = bytearray(data)
            broken[offset] ^= 0xFF
            decoded = VopDecoder().decode_sequence(
                bytes(broken), tolerate_errors=True
            )
            assert len(decoded.frames) == 2
