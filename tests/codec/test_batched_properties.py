"""Property tests: batched transform/quant helpers vs their scalar forms.

Hypothesis drives randomized blocks through the vectorized batch
operations (N-block quantize/dequantize, zigzag, run-level extraction)
and checks element-identity with the one-block-at-a-time application --
the equivalence the batched engine's bit-exactness rests on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.quant import (
    dequantize_any,
    inverse_zigzag_scan,
    quantize_any,
    run_level_arrays,
    run_level_events,
    run_level_events_batch,
    zigzag_scan,
)

block_batches = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
qps = st.integers(min_value=1, max_value=31)
methods = st.sampled_from([1, 2])


def random_blocks(seed: int, n: int, low=-1024, high=1024) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.randint(low, high, (n, 8, 8)).astype(np.float64)


def sparse_levels(seed: int, n: int) -> np.ndarray:
    """Quantized-level-like blocks: mostly zero, small magnitudes."""
    rng = np.random.RandomState(seed)
    levels = rng.randint(-32, 33, (n, 8, 8))
    mask = rng.rand(n, 8, 8) < 0.8
    levels[mask] = 0
    return levels.astype(np.int32)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=block_batches, qp=qps, intra=st.booleans(), method=methods)
def test_batched_quantize_matches_per_block(seed, n, qp, intra, method):
    blocks = random_blocks(seed, n)
    batched = quantize_any(blocks, qp, intra, method)
    for i in range(n):
        single = quantize_any(blocks[i], qp, intra, method)
        assert np.array_equal(batched[i], single)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=block_batches, qp=qps, intra=st.booleans(), method=methods)
def test_batched_dequantize_matches_per_block(seed, n, qp, intra, method):
    levels = sparse_levels(seed, n)
    batched = dequantize_any(levels, qp, intra, method)
    for i in range(n):
        single = dequantize_any(levels[i], qp, intra, method)
        assert np.array_equal(batched[i], single)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=block_batches)
def test_batched_zigzag_matches_per_block(seed, n):
    levels = sparse_levels(seed, n)
    scanned = zigzag_scan(levels)
    for i in range(n):
        assert np.array_equal(scanned[i], zigzag_scan(levels[i]))
    assert np.array_equal(inverse_zigzag_scan(scanned), levels)


@settings(max_examples=60, deadline=None)
@given(seed=seeds, n=block_batches)
def test_run_level_arrays_match_scalar_events(seed, n):
    scanned = zigzag_scan(sparse_levels(seed, n)).reshape(n, 64)
    rows, lasts, runs, levels = run_level_arrays(scanned)
    flat = list(zip(lasts.tolist(), runs.tolist(), levels.tolist()))
    expected_rows = []
    expected_events = []
    for i in range(n):
        events = run_level_events(scanned[i])
        expected_events.extend(events)
        expected_rows.extend([i] * len(events))
    assert rows.tolist() == expected_rows
    assert flat == expected_events


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=block_batches)
def test_run_level_events_batch_matches_scalar(seed, n):
    scanned = zigzag_scan(sparse_levels(seed, n)).reshape(n, 64)
    batched = run_level_events_batch(scanned)
    assert batched == [run_level_events(row) for row in scanned]


@settings(max_examples=25, deadline=None)
@given(seed=seeds, n=block_batches)
def test_batched_dct_matches_per_block(seed, n):
    blocks = random_blocks(seed, n, low=0, high=256)
    coeffs = forward_dct(blocks)
    recon = inverse_dct(coeffs)
    for i in range(n):
        assert np.array_equal(coeffs[i], forward_dct(blocks[i]))
        assert np.array_equal(recon[i], inverse_dct(coeffs[i]))
