"""Cross-cutting property tests on the whole codec.

Each property runs the complete encode->decode pipeline under randomized
conditions (scene seeds, quantizers, GOP shapes) and checks the invariants
that define the codec: decodability, bit-exactness with the encoder
reconstruction, display-order restoration, and monotone rate behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.video import SceneSpec, SyntheticScene, VideoObjectSpec
from repro.video.yuv import YuvFrame

WIDTH, HEIGHT = 64, 48


def random_frames(seed: int, n: int):
    spec = SceneSpec(
        width=WIDTH,
        height=HEIGHT,
        objects=(
            VideoObjectSpec(
                center_x=20 + (seed % 17),
                center_y=20 + (seed % 11),
                radius_x=10,
                radius_y=8,
                velocity_x=1.0 + (seed % 3),
                texture_seed=seed,
            ),
        ),
        background_seed=seed + 1,
    )
    scene = SyntheticScene(spec)
    return [scene.frame(i) for i in range(n)]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    qp=st.integers(min_value=1, max_value=31),
    m_distance=st.sampled_from([1, 2, 3]),
)
@settings(max_examples=12, deadline=None)
def test_property_roundtrip_bit_exact(seed, qp, m_distance):
    """Any (scene, quantizer, GOP shape): decode == encoder reconstruction."""
    config = CodecConfig(WIDTH, HEIGHT, qp=qp, gop_size=6, m_distance=m_distance)
    frames = random_frames(seed, 4)
    encoded = VopEncoder(config).encode_sequence(frames)
    decoded = VopDecoder().decode_sequence(encoded.data)
    assert len(decoded.frames) == 4
    for recon, out in zip(encoded.reconstructions, decoded.frames):
        assert np.array_equal(recon.y, out.y)
        assert np.array_equal(recon.u, out.u)
        assert np.array_equal(recon.v, out.v)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_property_rate_monotone_in_qp(seed):
    """Coarser quantizers never need more bits on the same input."""
    frames = random_frames(seed, 2)
    sizes = []
    for qp in (2, 10, 28):
        config = CodecConfig(WIDTH, HEIGHT, qp=qp, gop_size=2, m_distance=1)
        sizes.append(VopEncoder(config).encode_sequence(frames).total_bits)
    assert sizes[0] >= sizes[1] >= sizes[2]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_property_determinism(seed):
    """Identical inputs and config produce identical bitstreams."""
    frames = random_frames(seed, 3)
    config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
    first = VopEncoder(config).encode_sequence(frames)
    second = VopEncoder(config).encode_sequence(frames)
    assert first.data == second.data


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    luma=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=10, deadline=None)
def test_property_flat_frames_compress_extremely(seed, luma):
    """A constant frame is all-skip after the I-VOP and tiny overall."""
    flat = YuvFrame.blank(WIDTH, HEIGHT, luma=luma)
    config = CodecConfig(WIDTH, HEIGHT, qp=10, gop_size=4, m_distance=1)
    encoded = VopEncoder(config).encode_sequence([flat, flat, flat])
    assert encoded.total_bits < WIDTH * HEIGHT  # far below 1 bit/pixel total
    decoded = VopDecoder().decode_sequence(encoded.data)
    assert np.array_equal(decoded.frames[2].y, encoded.reconstructions[2].y)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_property_decoder_output_pixel_range(seed):
    """Decoded planes are always valid uint8, whatever the content."""
    frames = random_frames(seed, 3)
    config = CodecConfig(WIDTH, HEIGHT, qp=1, gop_size=3, m_distance=1)
    encoded = VopEncoder(config).encode_sequence(frames)
    decoded = VopDecoder().decode_sequence(encoded.data)
    for frame in decoded.frames:
        for _, plane in frame.planes():
            assert plane.dtype == np.uint8
