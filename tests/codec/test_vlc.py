"""Tests for the VLC layer: Huffman tables, coefficient events, MB headers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.vlc import (
    CBPY_TABLE,
    COEFF_TABLE,
    MCBPC_TABLE,
    HuffmanTable,
    decode_coefficient_event,
    decode_macroblock_header,
    decode_mv_component,
    encode_coefficient_event,
    encode_macroblock_header,
    encode_mv_component,
)


class TestHuffmanTable:
    def test_requires_two_symbols(self):
        with pytest.raises(ValueError):
            HuffmanTable([("a", 1.0)])

    def test_codes_are_prefix_free(self):
        table = HuffmanTable([("a", 5), ("b", 3), ("c", 1), ("d", 1)])
        codes = [format(code, f"0{length}b") for code, length in table.codes.values()]
        for first in codes:
            for second in codes:
                if first != second:
                    assert not second.startswith(first)

    def test_frequent_symbols_get_short_codes(self):
        table = HuffmanTable([("common", 100), ("rare", 1), ("rarer", 0.5)])
        assert table.codes["common"][1] < table.codes["rare"][1]

    def test_roundtrip_all_symbols(self):
        symbols = [(f"s{i}", 2.0**-i) for i in range(12)]
        table = HuffmanTable(symbols)
        writer = BitWriter()
        for symbol, _ in symbols:
            table.encode(writer, symbol)
        reader = BitReader(writer.getvalue())
        for symbol, _ in symbols:
            assert table.decode(reader) == symbol

    def test_deterministic_construction(self):
        weights = [("x", 3), ("y", 2), ("z", 2), ("w", 1)]
        assert HuffmanTable(weights).codes == HuffmanTable(weights).codes

    def test_kraft_equality(self):
        """A complete Huffman code satisfies the Kraft sum exactly."""
        table = HuffmanTable([(i, 1 + (i % 5)) for i in range(17)])
        kraft = sum(2.0**-length for _, length in table.codes.values())
        assert kraft == pytest.approx(1.0)


class TestCoefficientEvents:
    def test_common_event_roundtrip(self):
        writer = BitWriter()
        encode_coefficient_event(writer, 0, 0, 1)
        encode_coefficient_event(writer, 1, 2, -3)
        reader = BitReader(writer.getvalue())
        assert decode_coefficient_event(reader) == (0, 0, 1)
        assert decode_coefficient_event(reader) == (1, 2, -3)

    def test_escape_event_roundtrip(self):
        writer = BitWriter()
        encode_coefficient_event(writer, 1, 40, 900)  # beyond table ranges
        reader = BitReader(writer.getvalue())
        assert decode_coefficient_event(reader) == (1, 40, 900)

    def test_zero_level_rejected(self):
        with pytest.raises(ValueError):
            encode_coefficient_event(BitWriter(), 0, 0, 0)

    def test_oversized_level_rejected(self):
        with pytest.raises(ValueError):
            encode_coefficient_event(BitWriter(), 0, 0, 1 << 13)

    def test_common_events_cheaper_than_escape(self):
        common = BitWriter()
        encode_coefficient_event(common, 0, 0, 1)
        escape = BitWriter()
        encode_coefficient_event(escape, 0, 50, 2000)
        assert common.bit_position < escape.bit_position

    @given(
        last=st.integers(min_value=0, max_value=1),
        run=st.integers(min_value=0, max_value=63),
        level=st.integers(min_value=-2047, max_value=2047).filter(lambda v: v != 0),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_any_event_roundtrips(self, last, run, level):
        writer = BitWriter()
        encode_coefficient_event(writer, last, run, level)
        reader = BitReader(writer.getvalue())
        assert decode_coefficient_event(reader) == (last, run, level)


class TestMacroblockHeader:
    @pytest.mark.parametrize("is_intra", [True, False])
    @pytest.mark.parametrize("cbp", [0, 0b111111, 0b101010, 0b000011])
    def test_roundtrip(self, is_intra, cbp):
        writer = BitWriter()
        encode_macroblock_header(writer, is_intra, False, cbp, inter_allowed=True)
        header = decode_macroblock_header(BitReader(writer.getvalue()), inter_allowed=True)
        assert header.is_intra == is_intra
        assert header.cbp == cbp
        assert not header.is_skipped

    def test_skip_roundtrip(self):
        writer = BitWriter()
        encode_macroblock_header(writer, False, True, 0, inter_allowed=True)
        header = decode_macroblock_header(BitReader(writer.getvalue()), inter_allowed=True)
        assert header.is_skipped
        assert writer.bit_position == 1  # skip costs a single bit

    def test_ivop_cannot_skip(self):
        with pytest.raises(ValueError):
            encode_macroblock_header(BitWriter(), True, True, 0, inter_allowed=False)

    def test_ivop_header_has_no_skip_bit(self):
        writer = BitWriter()
        encode_macroblock_header(writer, True, False, 0b111100, inter_allowed=False)
        header = decode_macroblock_header(BitReader(writer.getvalue()), inter_allowed=False)
        assert header.is_intra
        assert header.cbp == 0b111100


class TestMotionVectorCodes:
    @given(st.integers(min_value=-33, max_value=33))
    @settings(max_examples=80, deadline=None)
    def test_property_mv_roundtrip(self, value):
        writer = BitWriter()
        encode_mv_component(writer, value)
        assert decode_mv_component(BitReader(writer.getvalue())) == value

    def test_zero_is_one_bit(self):
        writer = BitWriter()
        encode_mv_component(writer, 0)
        assert writer.bit_position == 1


class TestTableShapes:
    def test_coeff_table_has_escape(self):
        from repro.codec.vlc import ESCAPE

        assert ESCAPE in COEFF_TABLE.codes

    def test_small_tables_cover_alphabets(self):
        assert len(MCBPC_TABLE.codes) == 8
        assert len(CBPY_TABLE.codes) == 16
