"""Tests for frame stores, rate control, and config/type helpers."""

import numpy as np
import pytest

from repro.codec.framestore import BORDER, FrameStore
from repro.codec.ratecontrol import ConstantQp, RateController, make_controller
from repro.codec.types import CodecConfig, SequenceStats, VopStats, VopType
from repro.video.yuv import YuvFrame


class TestFrameStore:
    def test_geometry(self):
        store = FrameStore(96, 64)
        assert store.y.shape == (64 + 2 * BORDER, 96 + 2 * BORDER)
        assert store.u.shape == (32 + 2 * BORDER, 48 + 2 * BORDER)
        assert store.interior_y.shape == (64, 96)

    def test_load_and_to_frame_roundtrip(self, rng):
        store = FrameStore(32, 32)
        frame = YuvFrame(
            rng.integers(0, 256, (32, 32)).astype(np.uint8),
            rng.integers(0, 256, (16, 16)).astype(np.uint8),
            rng.integers(0, 256, (16, 16)).astype(np.uint8),
        )
        store.load(frame)
        result = store.to_frame()
        assert np.array_equal(result.y, frame.y)
        assert np.array_equal(result.u, frame.u)

    def test_load_rejects_wrong_size(self):
        store = FrameStore(32, 32)
        with pytest.raises(ValueError):
            store.load(YuvFrame.blank(64, 64))

    def test_expand_borders_replicates_edges(self):
        store = FrameStore(32, 32)
        store.interior_y[:] = 0
        store.interior_y[0, 0] = 200
        store.interior_y[0, :] = 50
        store.interior_y[0, 0] = 200
        store.expand_borders()
        # Top border rows replicate interior row 0.
        assert store.y[0, BORDER] == store.interior_y[0, 0]
        # Left border replicates column 0 (after corner fill).
        assert store.y[BORDER, 0] == store.interior_y[0, 0]
        # Corners are filled too.
        assert store.y[0, 0] == store.interior_y[0, 0]

    def test_interior_views_are_writable_views(self):
        store = FrameStore(32, 32)
        store.interior_y[5, 5] = 99
        assert store.y[BORDER + 5, BORDER + 5] == 99


class TestRateController:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(target_bitrate=0, frame_rate=30)
        with pytest.raises(ValueError):
            RateController(target_bitrate=1000, frame_rate=0)

    def test_type_budgets_ordered(self):
        controller = RateController(300_000, 30.0)
        assert controller.target_bits(VopType.I) > controller.target_bits(VopType.P)
        assert controller.target_bits(VopType.P) > controller.target_bits(VopType.B)

    def test_qp_rises_when_over_budget(self):
        controller = RateController(300_000, 30.0, initial_qp=10)
        controller.update(VopType.P, int(controller.target_bits(VopType.P) * 3))
        assert controller.current_qp > 10

    def test_qp_falls_when_under_budget(self):
        controller = RateController(300_000, 30.0, initial_qp=10)
        controller.update(VopType.P, int(controller.target_bits(VopType.P) * 0.3))
        assert controller.current_qp < 10

    def test_qp_stays_within_tolerance_band(self):
        controller = RateController(300_000, 30.0, initial_qp=10)
        controller.update(VopType.P, int(controller.target_bits(VopType.P)))
        assert controller.current_qp == 10

    def test_qp_clamped(self):
        controller = RateController(300_000, 30.0, initial_qp=31)
        for _ in range(10):
            controller.update(VopType.P, 10**9)
        assert controller.current_qp == 31

    def test_bvop_coded_coarser(self):
        controller = RateController(300_000, 30.0, initial_qp=10)
        assert controller.qp_for(VopType.B) > controller.qp_for(VopType.P)

    def test_constant_qp_ignores_feedback(self):
        controller = ConstantQp(7)
        controller.update(VopType.I, 10**9)
        assert controller.qp_for(VopType.I) == 7

    def test_make_controller_dispatch(self):
        fixed = make_controller(CodecConfig(32, 32, qp=5))
        assert isinstance(fixed, ConstantQp)
        adaptive = make_controller(CodecConfig(32, 32, qp=5, target_bitrate=10_000))
        assert isinstance(adaptive, RateController)


class TestCodecConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CodecConfig(30, 32)  # width not MB multiple
        with pytest.raises(ValueError):
            CodecConfig(32, 32, gop_size=0)
        with pytest.raises(ValueError):
            CodecConfig(32, 32, m_distance=0)
        with pytest.raises(ValueError):
            CodecConfig(32, 32, gop_size=4, m_distance=8)
        with pytest.raises(ValueError):
            CodecConfig(32, 32, qp=0)
        with pytest.raises(ValueError):
            CodecConfig(32, 32, search_range=0)
        with pytest.raises(ValueError):
            CodecConfig(32, 32, frame_rate=0)

    def test_macroblock_geometry(self):
        config = CodecConfig(96, 64)
        assert config.mb_cols == 6
        assert config.mb_rows == 4
        assert config.n_macroblocks == 24

    def test_scaled(self):
        config = CodecConfig(64, 64, search_range=16)
        half = config.scaled(2)
        assert half.width == 32
        assert half.search_range == 8
        with pytest.raises(ValueError):
            config.scaled(0)


class TestStats:
    def test_sequence_stats_aggregation(self):
        stats = SequenceStats()
        stats.vops.append(VopStats(VopType.I, 0, 0, 10, bits=1000))
        stats.vops.append(VopStats(VopType.P, 1, 1, 10, bits=500))
        stats.vops.append(VopStats(VopType.P, 2, 2, 10, bits=300))
        assert stats.total_bits == 1800
        assert stats.mean_bits(VopType.P) == 400
        assert stats.mean_bits() == 600
        assert stats.mean_bits(VopType.B) == 0
