"""Differential gate between the codec's two execution engines.

``REPRO_CODEC_ENGINE=reference`` is the per-macroblock oracle;
``batched`` is the frame-level fast path.  Everything observable must be
identical between them: the bitstream bytes, the reconstructed frames,
the per-VOP statistics, the decoder's output (including tolerant decode
of corrupted streams, where parse errors must fire at the same bit
positions), and the memory-trace counters the study pipeline feeds the
cache simulator.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.codec.engine import ENGINE_BATCHED, ENGINE_ENV, ENGINE_REFERENCE, IDCT_ENV
from repro.video import SceneSpec, SyntheticScene

WIDTH, HEIGHT = 96, 64


@contextmanager
def engine(value, idct=None):
    saved = {k: os.environ.get(k) for k in (ENGINE_ENV, IDCT_ENV)}
    os.environ[ENGINE_ENV] = value
    if idct is not None:
        os.environ[IDCT_ENV] = idct
    try:
        yield
    finally:
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous


def scene_frames(n, width=WIDTH, height=HEIGHT):
    scene = SyntheticScene(SceneSpec.default(width, height))
    return [scene.frame(i) for i in range(n)]


def encode_both(config, frames):
    with engine(ENGINE_REFERENCE):
        reference = VopEncoder(config).encode_sequence(frames)
    with engine(ENGINE_BATCHED):
        batched = VopEncoder(config).encode_sequence(frames)
    return reference, batched


def assert_frames_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        if left is None or right is None:
            assert left is None and right is None
            continue
        for plane in ("y", "u", "v"):
            assert np.array_equal(getattr(left, plane), getattr(right, plane))


def assert_stats_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert dataclasses.asdict(left) == dataclasses.asdict(right)


CONFIGS = {
    "i_only": dict(qp=8, gop_size=1, m_distance=1),
    "ip": dict(qp=8, gop_size=4, m_distance=1),
    "ipb": dict(qp=6, gop_size=6, m_distance=3),
    "resync": dict(qp=8, gop_size=4, m_distance=1, resync_markers=True),
    "dp_rvlc": dict(
        qp=8, gop_size=4, m_distance=1, resync_markers=True,
        data_partitioning=True, reversible_vlc=True,
    ),
    "mpeg_quant": dict(qp=6, gop_size=4, m_distance=1, quant_method=1),
    "no_half_pel": dict(qp=8, gop_size=4, m_distance=1, use_half_pel=False),
    "small_range": dict(qp=8, gop_size=4, m_distance=1, search_range=3),
    "ipb_resync": dict(qp=6, gop_size=6, m_distance=3, resync_markers=True),
}


class TestEncoderDifferential:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_bitstream_and_recon_bit_exact(self, name):
        config = CodecConfig(WIDTH, HEIGHT, **CONFIGS[name])
        frames = scene_frames(6 if config.m_distance == 1 else 7)
        reference, batched = encode_both(config, frames)
        assert reference.data == batched.data
        assert_frames_equal(reference.reconstructions, batched.reconstructions)
        assert_stats_equal(reference.stats.vops, batched.stats.vops)

    def test_search_range_beyond_border_falls_back(self):
        """search_range > plane border exceeds the batched kernel's domain;
        the engine must transparently use the per-MB search and still
        produce the identical stream."""
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, search_range=24)
        frames = scene_frames(4)
        reference, batched = encode_both(config, frames)
        assert reference.data == batched.data

    def test_rate_control_sequences_match(self):
        config = CodecConfig(
            WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1, target_bitrate=200_000
        )
        frames = scene_frames(6)
        reference, batched = encode_both(config, frames)
        assert reference.data == batched.data
        assert_stats_equal(reference.stats.vops, batched.stats.vops)


class TestDecoderDifferential:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_decode_bit_exact(self, name):
        config = CodecConfig(WIDTH, HEIGHT, **CONFIGS[name])
        frames = scene_frames(6 if config.m_distance == 1 else 7)
        with engine(ENGINE_BATCHED):
            data = VopEncoder(config).encode_sequence(frames).data
        with engine(ENGINE_REFERENCE):
            reference = VopDecoder().decode_sequence(data)
        with engine(ENGINE_BATCHED):
            batched = VopDecoder().decode_sequence(data)
        assert_frames_equal(reference.frames, batched.frames)
        assert_stats_equal(reference.vop_stats, batched.vop_stats)

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_tolerant_decode_of_corrupt_stream_matches(self, seed):
        """Concealment decisions hinge on *where* parsing fails; identical
        outputs mean the batched parser raises at the same points."""
        config = CodecConfig(
            WIDTH, HEIGHT, qp=6, gop_size=6, m_distance=3, resync_markers=True
        )
        with engine(ENGINE_BATCHED):
            data = bytearray(VopEncoder(config).encode_sequence(scene_frames(8)).data)
        rng = np.random.RandomState(seed)
        for pos in rng.randint(len(data) // 4, len(data) - 16, size=14):
            data[pos] ^= 1 << int(rng.randint(8))
        stream = bytes(data)
        with engine(ENGINE_REFERENCE):
            reference = VopDecoder().decode_sequence(stream, tolerate_errors=True)
        with engine(ENGINE_BATCHED):
            batched = VopDecoder().decode_sequence(stream, tolerate_errors=True)
        assert_frames_equal(reference.frames, batched.frames)
        assert_stats_equal(reference.vop_stats, batched.vop_stats)


class TestTraceDifferential:
    """The trace stream feeds the paper's cache model; batching must not
    change a single counter."""

    @staticmethod
    def _snapshot(hierarchy):
        return {
            "total": dataclasses.asdict(hierarchy.total),
            "phases": {
                name: dataclasses.asdict(c) for name, c in hierarchy.phases.items()
            },
        }

    def _traced_encode(self, config, frames, value):
        from repro.core.machines import SGI_O2
        from repro.trace import TraceRecorder

        with engine(value):
            hierarchy = SGI_O2.build_hierarchy()
            encoded = VopEncoder(config, TraceRecorder([hierarchy])).encode_sequence(
                frames
            )
        return encoded, self._snapshot(hierarchy)

    def _traced_decode(self, data, value):
        from repro.core.machines import SGI_O2
        from repro.trace import TraceRecorder

        with engine(value):
            hierarchy = SGI_O2.build_hierarchy()
            VopDecoder(recorder=TraceRecorder([hierarchy])).decode_sequence(data)
        return self._snapshot(hierarchy)

    def test_traced_encode_counters_identical(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
        frames = scene_frames(5)
        ref_encoded, ref_counts = self._traced_encode(config, frames, ENGINE_REFERENCE)
        bat_encoded, bat_counts = self._traced_encode(config, frames, ENGINE_BATCHED)
        assert ref_encoded.data == bat_encoded.data
        assert ref_counts == bat_counts

    def test_traced_decode_counters_identical(self):
        config = CodecConfig(
            WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2, resync_markers=True
        )
        with engine(ENGINE_BATCHED):
            data = VopEncoder(config).encode_sequence(scene_frames(5)).data
        assert self._traced_decode(data, ENGINE_REFERENCE) == self._traced_decode(
            data, ENGINE_BATCHED
        )


class TestFixedPointIdct:
    def test_closed_loop_is_drift_free(self):
        """Encoder and decoder sharing the fixed-point IDCT reconstruct
        bit-identically -- the property that makes an integer IDCT usable
        on machines with weak floating point."""
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=2)
        frames = scene_frames(6)
        with engine(ENGINE_BATCHED, idct="fixed"):
            encoded = VopEncoder(config).encode_sequence(frames)
            decoded = VopDecoder().decode_sequence(encoded.data)
        assert_frames_equal(decoded.frames, encoded.reconstructions)

    def test_reference_engine_ignores_fixed_idct(self):
        """The oracle always uses the float IDCT, so a reference-engine
        run is reproducible regardless of the IDCT knob."""
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=2, m_distance=1)
        frames = scene_frames(3)
        with engine(ENGINE_REFERENCE, idct="fixed"):
            fixed = VopEncoder(config).encode_sequence(frames)
        with engine(ENGINE_REFERENCE, idct="float"):
            floating = VopEncoder(config).encode_sequence(frames)
        assert fixed.data == floating.data

    def test_engine_knob_rejects_unknown_values(self):
        from repro.codec.engine import codec_engine, codec_idct

        with engine("nonsense"):
            with pytest.raises(ValueError):
                codec_engine()
        with engine(ENGINE_BATCHED, idct="nonsense"):
            with pytest.raises(ValueError):
                codec_idct()
