"""Tests for the bit-level writer/reader and startcode handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import (
    VOP_STARTCODE,
    BitReader,
    BitWriter,
)


class TestBitWriter:
    def test_simple_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0101, 4)
        assert writer.getvalue() == bytes([0b10110101])

    def test_value_must_fit(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_zero_bits_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_position == 0

    def test_partial_byte_flushed_with_stuffing(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        data = writer.getvalue()
        assert data == bytes([0b10101111])  # 0-then-1s stuffing
        # getvalue must not mutate the writer.
        assert writer.bit_position == 3

    def test_startcode_is_byte_aligned(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        writer.write_startcode(VOP_STARTCODE)
        data = writer.getvalue()
        assert data.index(b"\x00\x00\x01") % 1 == 0
        assert data[-1] == VOP_STARTCODE
        assert len(data) % 1 == 0


class TestRoundTrips:
    def test_bits_roundtrip(self):
        writer = BitWriter()
        values = [(5, 3), (0, 1), (255, 8), (1023, 10), (1, 1)]
        for value, width in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_bits(value.bit_length() if False else width) == value

    @given(st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_ue_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_ue() == value

    @given(st.lists(st.integers(min_value=-(2**15), max_value=2**15), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_se_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_se(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_se() == value

    def test_alignment_roundtrip_unaligned(self):
        writer = BitWriter()
        writer.write_bits(0b11, 2)
        writer.byte_align()
        writer.write_bits(0xAB, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(2) == 0b11
        reader.byte_align()
        assert reader.read_bits(8) == 0xAB

    def test_alignment_roundtrip_already_aligned(self):
        """An aligned writer stuffs a full 0x7F byte; the reader must skip it."""
        writer = BitWriter()
        writer.write_bits(0xCD, 8)
        writer.byte_align()
        writer.write_bits(0xEF, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(8) == 0xCD
        reader.byte_align()
        assert reader.read_bits(8) == 0xEF


class TestBitReader:
    def test_eof_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_peek_does_not_consume(self):
        reader = BitReader(b"\xa5")
        assert reader.peek_bits(4) == 0xA
        assert reader.read_bits(8) == 0xA5

    def test_peek_past_eof_zero_pads(self):
        reader = BitReader(b"\x80")
        assert reader.peek_bits(16) == 0x8000

    def test_malformed_ue_rejected(self):
        reader = BitReader(b"\x00" * 20)
        with pytest.raises(ValueError):
            reader.read_ue()


class TestStartcodeScanning:
    def test_scan_finds_code(self):
        writer = BitWriter()
        writer.write_bits(0x12, 8)
        writer.write_startcode(VOP_STARTCODE)
        writer.write_bits(0x34, 8)
        reader = BitReader(writer.getvalue())
        assert reader.next_startcode() == VOP_STARTCODE
        assert reader.read_bits(8) == 0x34

    def test_scan_returns_none_at_end(self):
        reader = BitReader(b"\x11\x22\x33")
        assert reader.next_startcode() is None

    def test_at_startcode(self):
        writer = BitWriter()
        writer.write_startcode(VOP_STARTCODE)
        reader = BitReader(writer.getvalue())
        reader.byte_align()
        assert reader.at_startcode()
        reader.read_bits(8)
        assert not reader.at_startcode()
