"""Tests for AC prediction and the MPEG weighted quantization method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.codec.predict import AC_LINE, FROM_ABOVE, FROM_LEFT, AcDcPredictor
from repro.codec.quant import (
    DEFAULT_INTER_MATRIX,
    DEFAULT_INTRA_MATRIX,
    METHOD_H263,
    METHOD_MPEG,
    dequantize_any,
    dequantize_weighted,
    quantize_any,
    quantize_weighted,
)
from repro.video import SceneSpec, SyntheticScene, psnr


class TestAcDcPredictor:
    def test_unavailable_neighbours_predict_zero_ac(self):
        predictor = AcDcPredictor(4, 4)
        assert not predictor.predict_ac(0, 0, FROM_ABOVE).any()
        assert not predictor.predict_ac(0, 0, FROM_LEFT).any()

    def test_ac_prediction_from_above(self):
        predictor = AcDcPredictor(4, 4)
        row_line = np.arange(1, AC_LINE + 1, dtype=np.int32)
        col_line = np.zeros(AC_LINE, dtype=np.int32)
        predictor.store(0, 1, 50)
        predictor.store_ac(0, 1, row_line, col_line)
        assert np.array_equal(predictor.predict_ac(1, 1, FROM_ABOVE), row_line)

    def test_ac_prediction_from_left(self):
        predictor = AcDcPredictor(4, 4)
        col_line = np.full(AC_LINE, 9, dtype=np.int32)
        predictor.store(1, 0, 50)
        predictor.store_ac(1, 0, np.zeros(AC_LINE, dtype=np.int32), col_line)
        assert np.array_equal(predictor.predict_ac(1, 1, FROM_LEFT), col_line)

    def test_direction_consistent_with_dc(self):
        predictor = AcDcPredictor(4, 4)
        predictor.store(0, 0, 100)
        predictor.store(0, 1, 100)
        predictor.store(1, 0, 30)
        dc, direction = predictor.predict_with_direction(1, 1)
        assert direction == FROM_LEFT
        assert dc == 30


class TestAcPredictionEndToEnd:
    def _frames(self, n=2):
        scene = SyntheticScene(SceneSpec.default(96, 64))
        return [scene.frame(i) for i in range(n)]

    def test_ivop_roundtrip_with_ac_pred(self):
        """Smooth gradients trigger AC prediction; decode must still be
        bit-exact with the encoder reconstruction."""
        config = CodecConfig(96, 64, qp=4, gop_size=1, m_distance=1)
        frames = self._frames(1)
        encoded = VopEncoder(config).encode_sequence(frames)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)
        assert np.array_equal(decoded.frames[0].u, encoded.reconstructions[0].u)

    def test_gradient_image_compresses_with_ac_pred(self):
        """A strong horizontal gradient makes every block's first row of AC
        coefficients identical -- AC prediction should shrink the stream
        (this exercises the flag=1 path)."""
        from repro.video.yuv import YuvFrame

        gradient = np.tile(
            np.linspace(0, 255, 96).astype(np.uint8), (64, 1)
        )
        frame = YuvFrame(
            gradient,
            np.full((32, 48), 128, np.uint8),
            np.full((32, 48), 128, np.uint8),
        )
        config = CodecConfig(96, 64, qp=4, gop_size=1, m_distance=1)
        encoded = VopEncoder(config).encode_sequence([frame])
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)
        assert psnr(frame.y, decoded.frames[0].y) > 38


class TestWeightedQuantization:
    def test_default_matrices_shape(self):
        assert DEFAULT_INTRA_MATRIX.shape == (8, 8)
        assert DEFAULT_INTRA_MATRIX[0, 0] == 8
        assert DEFAULT_INTER_MATRIX[0, 0] == 16
        # Weights grow toward high frequencies.
        assert DEFAULT_INTRA_MATRIX[7, 7] > DEFAULT_INTRA_MATRIX[0, 1]

    def test_intra_dc_unweighted(self):
        block = np.zeros((8, 8))
        block[0, 0] = 800.0
        levels = quantize_weighted(block, 10, intra=True)
        assert levels[0, 0] == 100
        assert dequantize_weighted(levels, 10, intra=True)[0, 0] == 800.0

    def test_high_frequencies_quantized_coarser(self):
        block = np.zeros((8, 8))
        block[0, 1] = 100.0
        block[7, 7] = 100.0
        levels = quantize_weighted(block, 2, intra=True)
        assert abs(levels[0, 1]) >= abs(levels[7, 7])

    @given(
        qp=st.integers(min_value=1, max_value=31),
        value=st.floats(min_value=-1500, max_value=1500),
        intra=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_reconstruction_error_bounded(self, qp, value, intra):
        block = np.zeros((8, 8))
        block[2, 3] = value
        matrix = DEFAULT_INTRA_MATRIX if intra else DEFAULT_INTER_MATRIX
        step = 2 * qp * matrix[2, 3] / 16.0
        levels = quantize_weighted(block, qp, intra=intra)
        recon = dequantize_weighted(levels, qp, intra=intra)
        assert abs(recon[2, 3] - value) <= step * 1.5 + 1

    def test_dispatch(self):
        block = np.zeros((8, 8))
        block[1, 1] = 300.0
        for method in (METHOD_H263, METHOD_MPEG):
            levels = quantize_any(block, 6, True, method)
            recon = dequantize_any(levels, 6, True, method)
            assert abs(recon[1, 1] - 300.0) < 70
        with pytest.raises(ValueError):
            quantize_any(block, 6, True, 3)
        with pytest.raises(ValueError):
            dequantize_any(block.astype(np.int32), 6, True, 0)


class TestMpegQuantEndToEnd:
    def test_mpeg_method_roundtrip(self):
        scene = SyntheticScene(SceneSpec.default(96, 64))
        frames = [scene.frame(i) for i in range(3)]
        config = CodecConfig(96, 64, qp=6, gop_size=4, m_distance=1, quant_method=1)
        encoded = VopEncoder(config).encode_sequence(frames)
        decoded = VopDecoder().decode_sequence(encoded.data)
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)

    def test_methods_produce_different_streams(self):
        scene = SyntheticScene(SceneSpec.default(96, 64))
        frames = [scene.frame(0)]
        h263 = VopEncoder(
            CodecConfig(96, 64, qp=6, gop_size=1, m_distance=1, quant_method=2)
        ).encode_sequence(frames)
        mpeg = VopEncoder(
            CodecConfig(96, 64, qp=6, gop_size=1, m_distance=1, quant_method=1)
        ).encode_sequence(frames)
        assert h263.data != mpeg.data

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            CodecConfig(96, 64, quant_method=3)
