"""Tests for error resilience: resync markers, recovery, concealment."""

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.codec.bitstream import RESYNC_STARTCODE
from repro.video import SceneSpec, SyntheticScene, psnr

WIDTH, HEIGHT = 96, 64


def frames(n=3):
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT))
    return [scene.frame(i) for i in range(n)]


def encode(resync=True, n=3, **overrides):
    params = dict(qp=8, gop_size=4, m_distance=1, resync_markers=resync)
    params.update(overrides)
    config = CodecConfig(WIDTH, HEIGHT, **params)
    return VopEncoder(config).encode_sequence(frames(n))


class TestResyncSyntax:
    def test_markers_present_in_stream(self):
        encoded = encode(resync=True)
        plain = encode(resync=False)
        assert encoded.data.count(bytes([0, 0, 1, RESYNC_STARTCODE])) > 0
        assert plain.data.count(bytes([0, 0, 1, RESYNC_STARTCODE])) == 0
        # Markers cost bits.
        assert len(encoded.data) > len(plain.data)

    def test_clean_stream_roundtrips(self):
        encoded = encode(resync=True)
        decoded = VopDecoder().decode_sequence(encoded.data)
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)

    def test_resync_with_bvops(self):
        encoded = encode(resync=True, n=5, gop_size=12, m_distance=3)
        decoded = VopDecoder().decode_sequence(encoded.data)
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)

    def test_resync_with_ivop_ac_pred(self):
        """Packet boundaries must reset intra prediction on both sides."""
        encoded = encode(resync=True, n=1, gop_size=1)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)


def _corrupt(data: bytes, offset_fraction: float, span: int = 12) -> bytes:
    """Overwrite a span of payload bytes with noise."""
    corrupted = bytearray(data)
    index = int(len(data) * offset_fraction)
    for position in range(index, min(index + span, len(data))):
        corrupted[position] = 0xA5 ^ (position & 0x5A)
    return bytes(corrupted)


def _breaking_corruption(data: bytes):
    """A corruption that provably breaks strict decoding (VLC streams can
    absorb some byte noise as wrong-but-valid coefficients)."""
    for percent in range(25, 90, 5):
        broken = _corrupt(data, percent / 100)
        try:
            VopDecoder().decode_sequence(broken)
        except Exception:
            return broken
    pytest.skip("no corruption offset broke this stream")


class TestErrorRecovery:
    def test_strict_mode_raises_on_corruption(self):
        encoded = encode(resync=True)
        broken = _breaking_corruption(encoded.data)
        with pytest.raises(Exception):
            VopDecoder().decode_sequence(broken)

    def test_tolerant_mode_survives_corruption(self):
        encoded = encode(resync=True)
        broken = _breaking_corruption(encoded.data)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        assert len(decoded.frames) == 3

    def test_corruption_loses_at_most_some_packets(self):
        encoded = encode(resync=True, n=2)
        broken = _breaking_corruption(encoded.data)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        lost = sum(v.lost_packets for v in decoded.vop_stats)
        total_packets = 2 * (HEIGHT // 16)
        assert 0 < lost < total_packets  # lost something, not everything

    def test_undamaged_frames_stay_bit_exact(self):
        """Corrupting the last VOP leaves earlier frames untouched."""
        encoded = encode(resync=True, n=3)
        broken = _corrupt(encoded.data, 0.97)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)

    def test_concealment_quality_reasonable(self):
        """Lost packets concealed from the reference should keep the frame
        recognizable (well above garbage PSNR)."""
        encoded = encode(resync=True, n=3)
        broken = _breaking_corruption(encoded.data)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        source = frames(3)
        worst = min(
            psnr(a.y, b.y) for a, b in zip(source, decoded.frames)
        )
        assert worst > 14.0

    def test_multiple_corruptions(self):
        encoded = encode(resync=True, n=3)
        broken = _corrupt(_corrupt(encoded.data, 0.4), 0.7)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        assert len(decoded.frames) == 3

    def test_without_markers_tolerant_mode_still_finishes(self):
        """No resync markers -> nothing to recover to within the VOP; the
        decoder conceals the rest of the VOP instead of crashing."""
        encoded = encode(resync=False, n=2)
        broken = _breaking_corruption(encoded.data)
        decoded = VopDecoder().decode_sequence(broken, tolerate_errors=True)
        assert len(decoded.frames) == 2
        assert sum(v.lost_packets for v in decoded.vop_stats) > 0
