"""Round trips for arbitrary-shape VOs and two-layer scalable coding."""

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.codec.scalability import ScalableDecoder, ScalableEncoder
from repro.video import SceneSpec, SyntheticScene, psnr

WIDTH, HEIGHT = 96, 64


def shaped_input(n_frames, n_objects=1, width=WIDTH, height=HEIGHT):
    scene = SyntheticScene(SceneSpec.default(width, height, n_objects=n_objects))
    frames, mask_lists = [], []
    for index in range(n_frames):
        frame, masks = scene.frame_with_masks(index)
        frames.append(frame)
        mask_lists.append(masks[0])
    return frames, mask_lists


class TestArbitraryShape:
    def test_shaped_roundtrip_lossless_shape(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1,
                             arbitrary_shape=True)
        frames, masks = shaped_input(3)
        encoded = VopEncoder(config).encode_sequence(frames, masks)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert decoded.masks is not None
        for original, recovered in zip(masks, decoded.masks):
            assert np.array_equal(original, recovered)

    def test_shaped_texture_matches_inside_object(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=6, gop_size=8, m_distance=1,
                             arbitrary_shape=True)
        frames, masks = shaped_input(3)
        encoded = VopEncoder(config).encode_sequence(frames, masks)
        decoded = VopDecoder().decode_sequence(encoded.data)
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)
        # Inside the object, the reconstruction should track the input.
        mask = masks[0] != 0
        if mask.any():
            inside_in = frames[0].y[mask].astype(np.float64)
            inside_out = decoded.frames[0].y[mask].astype(np.float64)
            rmse = np.sqrt(np.mean((inside_in - inside_out) ** 2))
            assert rmse < 12.0

    def test_transparent_mbs_cost_nothing(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1,
                             arbitrary_shape=True)
        frames, masks = shaped_input(2)
        encoded = VopEncoder(config).encode_sequence(frames, masks)
        assert any(v.transparent_mbs > 0 for v in encoded.stats.vops)

    def test_shaped_with_bvops(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=12, m_distance=3,
                             arbitrary_shape=True)
        frames, masks = shaped_input(5)
        encoded = VopEncoder(config).encode_sequence(frames, masks)
        decoded = VopDecoder().decode_sequence(encoded.data)
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)


class TestScalability:
    def test_two_layer_roundtrip(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames, _ = shaped_input(3)
        encoded = ScalableEncoder(config).encode_sequence(frames)
        recovered = ScalableDecoder().decode(encoded)
        assert len(recovered) == 3
        # Enhancement must beat base-only quality.
        base_up = encoded.base.reconstructions
        for frame, full in zip(frames, recovered):
            assert psnr(frame.y, full.y) > 26.0

    def test_enhancement_improves_on_base(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames, _ = shaped_input(2)
        encoded = ScalableEncoder(config).encode_sequence(frames)
        recovered = ScalableDecoder().decode(encoded)
        from repro.video.yuv import upsample_plane

        base_psnr = psnr(frames[0].y, upsample_plane(encoded.base.reconstructions[0].y))
        full_psnr = psnr(frames[0].y, recovered[0].y)
        assert full_psnr > base_psnr

    def test_two_layers_cost_more_bits(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames, _ = shaped_input(2)
        single = VopEncoder(config.scaled(2)).encode_sequence(
            [f for f in (shaped_input(2, width=WIDTH // 2, height=HEIGHT // 2)[0])]
        )
        double = ScalableEncoder(config).encode_sequence(frames)
        assert double.total_bits > single.total_bits

    def test_odd_dimensions_pad_base_layer(self):
        encoder = ScalableEncoder(CodecConfig(48, 48))
        assert encoder.base_width == 32  # 24 padded up to one MB
        assert encoder.base_height == 32
        frames, _ = shaped_input(2, width=48, height=48)
        encoded = encoder.encode_sequence(frames)
        recovered = ScalableDecoder().decode(encoded)
        assert recovered[0].width == 48

    def test_merged_stats_cover_both_layers(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1)
        frames, _ = shaped_input(2)
        encoded = ScalableEncoder(config).encode_sequence(frames)
        assert len(encoded.stats.vops) == 4  # 2 frames x 2 layers
