"""Tests for data partitioning and reversible-VLC error resilience.

The MPEG-4 tools under test (paper Section 2.1): each video packet is
split by a motion marker into a motion/DC partition and a texture
partition, so texture damage degrades to motion-compensated concealment
instead of killing the packet; with reversible VLC the damaged texture
tail is additionally salvaged by decoding backward from the next resync
point.
"""

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.codec.bitstream import MOTION_MARKER_STARTCODE
from repro.codec.errors import BitstreamError
from repro.video import SceneSpec, SyntheticScene

WIDTH, HEIGHT = 96, 64
MOTION_MARKER_BYTES = bytes([0, 0, 1, MOTION_MARKER_STARTCODE])


def frames(n=5):
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT))
    return [scene.frame(i) for i in range(n)]


def encode(n=5, **overrides):
    params = dict(qp=8, gop_size=4, m_distance=1, resync_markers=True,
                  data_partitioning=True, reversible_vlc=True)
    params.update(overrides)
    config = CodecConfig(WIDTH, HEIGHT, **params)
    return VopEncoder(config).encode_sequence(frames(n))


def _zero_after_marker(data: bytes, marker_index: int, offset: int, n: int) -> bytes:
    """Zero ``n`` bytes starting ``offset`` bytes after the chosen marker."""
    markers = [
        i for i in range(len(data) - 3)
        if data[i : i + 4] == MOTION_MARKER_BYTES
    ]
    position = markers[marker_index] + 4 + offset
    corrupted = bytearray(data)
    for k in range(n):
        if position + k < len(corrupted):
            corrupted[position + k] = 0
    return bytes(corrupted)


class TestConfigValidation:
    def test_rvlc_requires_dp(self):
        with pytest.raises(ValueError, match="reversible_vlc"):
            CodecConfig(WIDTH, HEIGHT, resync_markers=True, reversible_vlc=True)

    def test_dp_requires_resync(self):
        with pytest.raises(ValueError, match="resync"):
            CodecConfig(WIDTH, HEIGHT, data_partitioning=True)

    def test_dp_excludes_shape(self):
        with pytest.raises(ValueError, match="arbitrary_shape"):
            CodecConfig(WIDTH, HEIGHT, resync_markers=True,
                        data_partitioning=True, arbitrary_shape=True)


class TestPartitionedSyntax:
    def test_motion_markers_present(self):
        partitioned = encode()
        flat = encode(data_partitioning=False, reversible_vlc=False)
        assert partitioned.data.count(MOTION_MARKER_BYTES) > 0
        assert flat.data.count(MOTION_MARKER_BYTES) == 0

    def test_legacy_streams_unchanged(self):
        """dp/rvlc header bits are gated behind resync_markers, so
        streams without resync markers stay bit-identical to the seed."""
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=4, m_distance=1)
        one = VopEncoder(config).encode_sequence(frames(3)).data
        two = VopEncoder(config).encode_sequence(frames(3)).data
        assert one == two
        decoded = VopDecoder().decode_sequence(one)
        assert len(decoded.frames) == 3


class TestPartitionedRoundtrip:
    @pytest.mark.parametrize("rvlc", [False, True])
    def test_clean_roundtrip_bit_exact(self, rvlc):
        encoded = encode(reversible_vlc=rvlc)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert decoded.is_clean
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)
            assert np.array_equal(recon.u, out.u)
            assert np.array_equal(recon.v, out.v)

    def test_roundtrip_with_bvops(self):
        encoded = encode(n=7, gop_size=12, m_distance=3)
        decoded = VopDecoder().decode_sequence(encoded.data)
        assert decoded.is_clean
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)


class TestTextureDamage:
    def test_texture_loss_falls_back_to_concealment(self):
        encoded = encode()
        concealed_total = 0
        for marker_index in range(4):
            corrupted = _zero_after_marker(encoded.data, marker_index, 6, 4)
            decoded = VopDecoder().decode_sequence(
                corrupted, tolerate_errors=True
            )
            assert len(decoded.frames) == 5
            stats = decoded.vop_stats
            concealed_total += sum(s.texture_concealed_mbs for s in stats)
        assert concealed_total > 0

    def test_rvlc_salvages_tail_blocks(self):
        encoded = encode()
        salvaged_total = 0
        for marker_index in range(6):
            for offset in (4, 6, 8):
                corrupted = _zero_after_marker(
                    encoded.data, marker_index, offset, 3
                )
                decoded = VopDecoder().decode_sequence(
                    corrupted, tolerate_errors=True
                )
                salvaged_total += sum(
                    s.rvlc_salvaged_blocks for s in decoded.vop_stats
                )
        assert salvaged_total > 0

    def test_salvage_never_hurts_quality(self):
        """Paired damage with and without backward salvage: applying
        salvaged blocks must not lower PSNR versus dropping the tail."""
        from repro.video.quality import psnr

        encoded = encode()
        sources = frames(5)
        original_salvage = VopDecoder.__dict__["_rvlc_salvage"].__func__

        def mean_psnr(decoded):
            return sum(
                psnr(src.y, out.y) for src, out in zip(sources, decoded.frames)
            ) / len(sources)

        try:
            for marker_index in range(4):
                corrupted = _zero_after_marker(
                    encoded.data, marker_index, 5, 3
                )
                with_salvage = VopDecoder().decode_sequence(
                    corrupted, tolerate_errors=True
                )
                VopDecoder._rvlc_salvage = staticmethod(lambda d, s, e: [])
                without_salvage = VopDecoder().decode_sequence(
                    corrupted, tolerate_errors=True
                )
                VopDecoder._rvlc_salvage = staticmethod(original_salvage)
                assert mean_psnr(with_salvage) >= mean_psnr(without_salvage) - 0.01
        finally:
            VopDecoder._rvlc_salvage = staticmethod(original_salvage)

    def test_strict_mode_raises_typed_error(self):
        encoded = encode()
        rejected = 0
        for marker_index in range(6):
            corrupted = _zero_after_marker(encoded.data, marker_index, 4, 5)
            try:
                VopDecoder().decode_sequence(corrupted)
            except BitstreamError:
                rejected += 1
            # An untyped exception would propagate and fail the test.
        assert rejected > 0

    def test_motion_marker_damage_conceals_row(self):
        encoded = encode()
        markers = [
            i for i in range(len(encoded.data) - 3)
            if encoded.data[i : i + 4] == MOTION_MARKER_BYTES
        ]
        corrupted = bytearray(encoded.data)
        corrupted[markers[1] + 3] = 0x55  # marker suffix destroyed
        decoded = VopDecoder().decode_sequence(
            bytes(corrupted), tolerate_errors=True
        )
        assert len(decoded.frames) == 5
        assert sum(s.lost_packets for s in decoded.vop_stats) > 0
