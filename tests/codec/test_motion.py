"""Tests for motion estimation and compensation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.motion import (
    MotionVector,
    ZERO_MV,
    bidirectional_prediction,
    block_sad,
    compensate,
    full_search,
    half_pel_refine,
    intra_inter_decision,
    median_mv,
)


def textured_plane(height=64, width=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (height, width)).astype(np.uint8)


class TestMotionVector:
    def test_full_pel_conversion(self):
        assert MotionVector(4, -6).full_pel() == (2, -3)

    def test_chroma_rounds_toward_zero(self):
        assert MotionVector(3, -3).chroma() == MotionVector(1, -1)
        assert MotionVector(4, -4).chroma() == MotionVector(2, -2)

    def test_is_zero(self):
        assert ZERO_MV.is_zero
        assert not MotionVector(1, 0).is_zero


class TestFullSearch:
    def test_finds_exact_translation(self):
        reference = textured_plane()
        dx, dy = 5, -3
        mb_x, mb_y = 24, 24
        current = reference[mb_y + dy : mb_y + dy + 16, mb_x + dx : mb_x + dx + 16]
        result = full_search(current, reference, mb_x, mb_y, search_range=8)
        assert result.mv == MotionVector(2 * dx, 2 * dy)
        assert result.sad == 0

    def test_zero_bias_prefers_stationary(self):
        reference = textured_plane()
        current = reference[24:40, 24:40]
        result = full_search(current, reference, 24, 24, search_range=8)
        assert result.mv.is_zero
        assert result.sad == 0

    def test_window_clamped_at_frame_edge(self):
        reference = textured_plane()
        current = reference[0:16, 0:16]
        result = full_search(current, reference, 0, 0, search_range=16)
        # Window clamps to the top-left corner: (16+1)^2 candidates.
        assert result.candidates_evaluated == 17 * 17
        assert result.mv.is_zero

    def test_full_window_candidate_count(self):
        reference = textured_plane(96, 96)
        current = reference[40:56, 40:56]
        result = full_search(current, reference, 40, 40, search_range=16)
        assert result.candidates_evaluated == 33 * 33

    @given(
        dx=st.integers(min_value=-6, max_value=6),
        dy=st.integers(min_value=-6, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_recovers_any_translation(self, dx, dy):
        reference = textured_plane(seed=42)
        mb_x = mb_y = 24
        current = reference[mb_y + dy : mb_y + dy + 16, mb_x + dx : mb_x + dx + 16]
        result = full_search(current, reference, mb_x, mb_y, search_range=8)
        assert result.sad == 0
        if (dx, dy) != (0, 0):
            assert result.mv == MotionVector(2 * dx, 2 * dy)


class TestHalfPel:
    def test_refinement_never_worse(self):
        reference = textured_plane(seed=3)
        current = reference[16:32, 16:32]
        full = full_search(current, reference, 18, 18, search_range=8)
        refined = half_pel_refine(current, reference, 18, 18, full.mv, full.sad)
        assert refined.sad <= full.sad

    def test_finds_half_pel_motion(self):
        # Build a current block that is the half-pel interpolation of the
        # reference: refinement must find an odd MV component with SAD 0.
        reference = textured_plane(seed=4)
        mv = MotionVector(1, 0)
        current = compensate(reference, 24, 24, mv, 16)
        full = full_search(current, reference, 24, 24, search_range=4)
        refined = half_pel_refine(current, reference, 24, 24, full.mv, full.sad)
        assert refined.mv == mv
        assert refined.sad == 0


class TestCompensate:
    def test_integer_mv_is_copy(self):
        reference = textured_plane()
        block = compensate(reference, 8, 8, MotionVector(4, -2), 16)
        assert np.array_equal(block, reference[7:23, 10:26])

    def test_half_pel_horizontal_average(self):
        reference = np.zeros((16, 16), dtype=np.uint8)
        reference[0, 0] = 10
        reference[0, 1] = 20
        block = compensate(reference, 0, 0, MotionVector(1, 0), 8)
        assert block[0, 0] == 15  # rounded average

    def test_half_pel_diagonal_average(self):
        reference = np.array([[0, 4], [8, 12]], dtype=np.uint8)
        reference = np.pad(reference, ((0, 8), (0, 8)))
        block = compensate(reference, 0, 0, MotionVector(1, 1), 8)
        assert block[0, 0] == (0 + 4 + 8 + 12 + 2) // 4

    def test_out_of_bounds_rejected(self):
        reference = textured_plane(32, 32)
        with pytest.raises(ValueError):
            compensate(reference, 0, 0, MotionVector(-2, 0), 16)
        with pytest.raises(ValueError):
            compensate(reference, 17 * 2 and 16, 16, MotionVector(1, 1), 16)


class TestBidirectional:
    def test_average(self):
        forward = np.full((4, 4), 10, dtype=np.uint8)
        backward = np.full((4, 4), 21, dtype=np.uint8)
        assert (bidirectional_prediction(forward, backward) == 16).all()  # (31+1)/2

    def test_symmetric(self):
        a = textured_plane(16, 16, seed=5)
        b = textured_plane(16, 16, seed=6)
        assert np.array_equal(
            bidirectional_prediction(a, b), bidirectional_prediction(b, a)
        )


class TestHelpers:
    def test_block_sad(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 3, dtype=np.uint8)
        assert block_sad(a, b) == 12

    def test_block_sad_worst_case_does_not_overflow(self):
        """256 * 255 = 65280 exceeds int16; the int32 accumulator must
        hold the worst-case 16x16 SAD exactly."""
        a = np.zeros((16, 16), dtype=np.uint8)
        b = np.full((16, 16), 255, dtype=np.uint8)
        assert block_sad(a, b) == 16 * 16 * 255
        assert block_sad(b, a) == 16 * 16 * 255

    def test_block_sad_margin_beyond_int16(self):
        """Checkerboard extremes: per-row sums (16 * 255 = 4080) fit
        int16 but the block total must not wrap when accumulated."""
        a = np.indices((16, 16)).sum(axis=0) % 2 * 255
        sad = block_sad(a.astype(np.uint8), (255 - a).astype(np.uint8))
        assert sad == 16 * 16 * 255

    def test_median_mv(self):
        result = median_mv(MotionVector(2, 0), MotionVector(-4, 8), MotionVector(0, 2))
        assert result == MotionVector(0, 2)

    def test_intra_decision_flat_block_bad_prediction(self):
        flat = np.full((16, 16), 128, dtype=np.uint8)
        assert intra_inter_decision(flat, inter_sad=50_000)

    def test_inter_decision_good_prediction(self):
        textured = textured_plane(16, 16)
        assert not intra_inter_decision(textured, inter_sad=10)
