"""End-to-end codec tests: encode -> bitstream -> decode round trips.

The invariant throughout: the decoder's output is *bit-exact* with the
encoder's local reconstruction (a drift-free closed loop), and the
reconstruction is a faithful (high-PSNR) rendition of the input.
"""

import numpy as np
import pytest

from repro.codec import CodecConfig, VopDecoder, VopEncoder, VopType
from repro.codec.types import coding_order, display_order
from repro.video import SceneSpec, SyntheticScene, psnr

WIDTH, HEIGHT = 96, 64


def scene_frames(n, width=WIDTH, height=HEIGHT, n_objects=1):
    scene = SyntheticScene(SceneSpec.default(width, height, n_objects=n_objects))
    return [scene.frame(i) for i in range(n)]


def roundtrip(config, frames, masks=None):
    encoder = VopEncoder(config)
    encoded = encoder.encode_sequence(frames, masks)
    decoder = VopDecoder()
    decoded = decoder.decode_sequence(encoded.data)
    return encoded, decoded


class TestCodingOrder:
    def test_paper_figure1_pattern(self):
        """Display I B1 B2 P must code as I P B1 B2 (paper Figure 1)."""
        schedule = coding_order(4, 12, 3)
        assert schedule == [
            (0, VopType.I),
            (3, VopType.P),
            (1, VopType.B),
            (2, VopType.B),
        ]

    def test_no_bvops_when_m1(self):
        schedule = coding_order(6, 12, 1)
        assert all(t is not VopType.B for _, t in schedule)
        assert [d for d, _ in schedule] == list(range(6))

    def test_gop_boundaries_are_ivops(self):
        schedule = coding_order(26, 12, 3)
        types = dict(schedule)
        assert types[0] is VopType.I
        assert types[12] is VopType.I
        assert types[24] is VopType.I

    def test_every_frame_coded_exactly_once(self):
        schedule = coding_order(30, 12, 3)
        assert display_order(schedule) == list(range(30))

    def test_trailing_partial_segment(self):
        schedule = coding_order(5, 12, 3)
        assert (4, VopType.P) in schedule

    def test_empty(self):
        assert coding_order(0, 12, 3) == []

    def test_b_vops_coded_after_future_anchor(self):
        schedule = coding_order(7, 12, 3)
        positions = {display: i for i, (display, _) in enumerate(schedule)}
        for display, vop_type in schedule:
            if vop_type is VopType.B:
                future = min(d for d, t in schedule if t is not VopType.B and d > display)
                assert positions[future] < positions[display]


class TestIntraOnly:
    def test_single_ivop_roundtrip(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=6, gop_size=1, m_distance=1)
        frames = scene_frames(1)
        encoded, decoded = roundtrip(config, frames)
        assert len(decoded.frames) == 1
        assert np.array_equal(decoded.frames[0].y, encoded.reconstructions[0].y)
        assert np.array_equal(decoded.frames[0].u, encoded.reconstructions[0].u)
        assert np.array_equal(decoded.frames[0].v, encoded.reconstructions[0].v)

    def test_ivop_quality(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=4, gop_size=1, m_distance=1)
        frames = scene_frames(1)
        encoded, _ = roundtrip(config, frames)
        assert psnr(frames[0].y, encoded.reconstructions[0].y) > 30.0

    def test_coarse_qp_reduces_bits(self):
        frames = scene_frames(1)
        fine = VopEncoder(
            CodecConfig(WIDTH, HEIGHT, qp=2, gop_size=1, m_distance=1)
        ).encode_sequence(frames)
        coarse = VopEncoder(
            CodecConfig(WIDTH, HEIGHT, qp=24, gop_size=1, m_distance=1)
        ).encode_sequence(frames)
        assert coarse.total_bits < fine.total_bits


class TestPredictive:
    def test_ip_sequence_roundtrip(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames = scene_frames(5)
        encoded, decoded = roundtrip(config, frames)
        assert len(decoded.frames) == 5
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)
            assert np.array_equal(recon.u, out.u)
            assert np.array_equal(recon.v, out.v)

    def test_pvops_cheaper_than_ivops(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames = scene_frames(5)
        encoded, _ = roundtrip(config, frames)
        stats = encoded.stats
        i_bits = stats.mean_bits(VopType.I)
        p_bits = stats.mean_bits(VopType.P)
        assert p_bits < i_bits

    def test_static_scene_mostly_skipped(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=10, gop_size=8, m_distance=1)
        frames = [scene_frames(1)[0]] * 3  # identical frames
        encoded, decoded = roundtrip(config, frames)
        p_stats = [v for v in encoded.stats.vops if v.vop_type is VopType.P]
        total_mbs = (WIDTH // 16) * (HEIGHT // 16)
        for vop in p_stats:
            assert vop.skipped_mbs > total_mbs * 0.8
        assert np.array_equal(decoded.frames[2].y, encoded.reconstructions[2].y)

    def test_motion_is_found(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=8, m_distance=1)
        frames = scene_frames(4)
        encoded, _ = roundtrip(config, frames)
        assert any(v.sad_candidates > 0 for v in encoded.stats.vops)

    def test_quality_across_sequence(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=6, gop_size=8, m_distance=1)
        frames = scene_frames(5)
        encoded, _ = roundtrip(config, frames)
        for vop in encoded.stats.vops:
            assert vop.psnr_y > 28.0


class TestBidirectional:
    def test_ibbp_roundtrip(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=12, m_distance=3)
        frames = scene_frames(7)
        encoded, decoded = roundtrip(config, frames)
        assert len(decoded.frames) == 7
        for recon, out in zip(encoded.reconstructions, decoded.frames):
            assert np.array_equal(recon.y, out.y)

    def test_bvops_present_and_cheapest(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=12, m_distance=3)
        frames = scene_frames(7)
        encoded, _ = roundtrip(config, frames)
        types = {v.vop_type for v in encoded.stats.vops}
        assert VopType.B in types
        assert encoded.stats.mean_bits(VopType.B) <= encoded.stats.mean_bits(VopType.I)

    def test_decoder_outputs_display_order(self):
        config = CodecConfig(WIDTH, HEIGHT, qp=8, gop_size=12, m_distance=3)
        frames = scene_frames(7)
        encoded, decoded = roundtrip(config, frames)
        # Coded order differs from display order...
        coded_displays = [v.display_index for v in decoded.vop_stats]
        assert coded_displays != sorted(coded_displays)
        # ...but output frames come back in display order, verified by
        # matching each against the encoder's per-display reconstruction.
        for index, frame in enumerate(decoded.frames):
            assert np.array_equal(frame.y, encoded.reconstructions[index].y)


class TestRateControl:
    def test_bitrate_tracking(self):
        config = CodecConfig(
            WIDTH, HEIGHT, qp=10, gop_size=8, m_distance=1,
            target_bitrate=60_000, frame_rate=30.0,
        )
        frames = scene_frames(10)
        encoded, decoded = roundtrip(config, frames)
        assert len(decoded.frames) == 10
        produced = encoded.total_bits / (10 / 30.0)
        # The controller should land within a factor ~2.5 of target.
        assert produced < config.target_bitrate * 3.0

    def test_qp_adapts(self):
        config = CodecConfig(
            WIDTH, HEIGHT, qp=2, gop_size=8, m_distance=1,
            target_bitrate=20_000, frame_rate=30.0,
        )
        frames = scene_frames(8)
        encoded, _ = roundtrip(config, frames)
        qps = [v.qp for v in encoded.stats.vops]
        assert max(qps) > 2  # the tiny budget forces the quantizer up


class TestValidation:
    def test_frame_dimension_mismatch_rejected(self):
        config = CodecConfig(WIDTH, HEIGHT)
        small = scene_frames(1, width=48, height=32)
        with pytest.raises(ValueError):
            VopEncoder(config).encode_sequence(small)

    def test_missing_masks_rejected(self):
        config = CodecConfig(WIDTH, HEIGHT, arbitrary_shape=True)
        with pytest.raises(ValueError):
            VopEncoder(config).encode_sequence(scene_frames(1))

    def test_garbage_stream_rejected(self):
        with pytest.raises((ValueError, EOFError)):
            VopDecoder().decode_sequence(b"\x00\x01\x02\x03" * 10)
