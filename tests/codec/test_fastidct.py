"""Accuracy and contract tests for the fixed-point inverse DCT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.fastidct import inverse_dct_fixed
from repro.codec.quant import dequantize_any


class TestInverseDctFixed:
    def test_zero_block_is_exact_zero(self):
        assert np.array_equal(inverse_dct_fixed(np.zeros((8, 8))), np.zeros((8, 8)))

    def test_dc_only_block(self):
        coeffs = np.zeros((8, 8))
        coeffs[0, 0] = 8 * 100.0  # orthonormal DC for a flat 100 block
        recon = inverse_dct_fixed(coeffs)
        assert np.abs(recon - 100.0).max() <= 1.0

    def test_batched_shape_matches_per_block(self):
        rng = np.random.RandomState(1)
        blocks = rng.randint(-512, 512, (5, 6, 8, 8)).astype(np.float64)
        batched = inverse_dct_fixed(blocks)
        assert batched.shape == blocks.shape
        for i in range(5):
            for j in range(6):
                assert np.array_equal(batched[i, j], inverse_dct_fixed(blocks[i, j]))

    def test_rejects_non_8x8(self):
        with pytest.raises(ValueError):
            inverse_dct_fixed(np.zeros((4, 4)))

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_within_one_lsb_of_float_idct_on_pixels(self, seed):
        """Round-tripped pixel blocks reconstruct within +/-1 of the
        float reference -- the accuracy bound that keeps the fixed-point
        decode visually identical and drift-free in closed loop."""
        rng = np.random.RandomState(seed)
        pixels = rng.randint(0, 256, (4, 8, 8)).astype(np.float64)
        coeffs = forward_dct(pixels)
        fixed = inverse_dct_fixed(coeffs)
        floating = inverse_dct(coeffs)
        assert np.abs(fixed - floating).max() <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        qp=st.integers(1, 31),
        intra=st.booleans(),
        method=st.sampled_from([1, 2]),
    )
    def test_within_two_lsb_on_dequantized_levels(self, seed, qp, intra, method):
        """The domain the decoder actually feeds it: dequantized levels of
        both quantization methods (integers and sixteenths).  Arbitrary
        legal levels at high QP can dequantize far outside the natural
        DCT range, where the butterfly's rounding error grows slightly
        past one LSB; two bounds the whole legal domain."""
        rng = np.random.RandomState(seed)
        levels = rng.randint(-40, 41, (3, 8, 8))
        levels[rng.rand(3, 8, 8) < 0.7] = 0
        coeffs = dequantize_any(levels.astype(np.int32), qp, intra, method)
        fixed = inverse_dct_fixed(coeffs)
        floating = inverse_dct(coeffs)
        assert np.abs(fixed - floating).max() <= 2.0

    def test_outputs_are_integer_valued(self):
        rng = np.random.RandomState(2)
        coeffs = rng.randint(-512, 512, (8, 8)).astype(np.float64)
        recon = inverse_dct_fixed(coeffs)
        assert np.array_equal(recon, np.rint(recon))
