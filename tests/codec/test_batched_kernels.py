"""Frame-level kernels vs their per-macroblock reference counterparts.

Every kernel in :mod:`repro.codec.batched` has a scalar oracle in
:mod:`repro.codec.motion`; these tests pin the equivalences macroblock
by macroblock -- including the pure-NumPy search fallback, which must
agree with both the C kernel and the scalar loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.batched import (
    _full_search_plane_numpy,
    chroma_mv,
    compensate_many,
    full_search_plane,
    gather_plane_blocks,
    half_pel_refine_plane,
    intra_decisions,
    predict_many,
    scatter_plane_blocks,
)
from repro.codec.framestore import BORDER
from repro.codec.motion import (
    MotionVector,
    compensate,
    full_search,
    half_pel_refine,
    intra_inter_decision,
)
from repro.video.yuv import MB_SIZE

MB_ROWS, MB_COLS = 3, 4
HEIGHT, WIDTH = MB_ROWS * MB_SIZE, MB_COLS * MB_SIZE


def padded_plane(seed: int) -> np.ndarray:
    rng = np.random.RandomState(seed)
    plane = rng.randint(0, 256, (HEIGHT + 2 * BORDER, WIDTH + 2 * BORDER), np.int32)
    return plane.astype(np.uint8)


def shifted_plane(base: np.ndarray, seed: int) -> np.ndarray:
    """A noisy shift of ``base`` so searches find non-trivial vectors."""
    rng = np.random.RandomState(seed)
    shifted = np.roll(base, (rng.randint(-4, 5), rng.randint(-4, 5)), axis=(0, 1))
    noise = rng.randint(-6, 7, shifted.shape)
    return np.clip(shifted.astype(np.int32) + noise, 0, 255).astype(np.uint8)


@pytest.fixture(scope="module")
def planes():
    reference = padded_plane(1)
    current = shifted_plane(reference, 2)
    return reference, current


class TestFullSearchPlane:
    @pytest.mark.parametrize("search_range", [1, 3, 8, 16])
    def test_matches_per_mb_search(self, planes, search_range):
        reference, current = planes
        dx, dy, sad = full_search_plane(
            reference, current, BORDER, MB_ROWS, MB_COLS, search_range
        )
        for mr in range(MB_ROWS):
            for mc in range(MB_COLS):
                y0, x0 = BORDER + mr * MB_SIZE, BORDER + mc * MB_SIZE
                block = current[y0 : y0 + MB_SIZE, x0 : x0 + MB_SIZE]
                result = full_search(block, reference, x0, y0, search_range)
                assert result.mv.dx == 2 * dx[mr, mc], (mr, mc)
                assert result.mv.dy == 2 * dy[mr, mc], (mr, mc)
                assert result.sad == sad[mr, mc], (mr, mc)

    def test_numpy_fallback_matches_kernel(self, planes):
        reference, current = planes
        kernel = full_search_plane(reference, current, BORDER, MB_ROWS, MB_COLS, 8)
        fallback = _full_search_plane_numpy(
            reference, current, BORDER, MB_ROWS, MB_COLS, 8
        )
        for a, b in zip(kernel, fallback):
            assert np.array_equal(a, b)

    def test_rejects_range_beyond_border(self, planes):
        reference, current = planes
        with pytest.raises(ValueError):
            full_search_plane(reference, current, BORDER, MB_ROWS, MB_COLS, BORDER + 1)

    def test_model_work_counts_unchanged_by_batching(self, planes):
        """The paper's work model reads come from the scalar search; the
        batched planner must leave them reproducible for the same MVs."""
        reference, current = planes
        dx, dy, sad = full_search_plane(
            reference, current, BORDER, MB_ROWS, MB_COLS, 8
        )
        for mr in range(MB_ROWS):
            for mc in range(MB_COLS):
                y0, x0 = BORDER + mr * MB_SIZE, BORDER + mc * MB_SIZE
                block = current[y0 : y0 + MB_SIZE, x0 : x0 + MB_SIZE]
                plain = full_search(block, reference, x0, y0, 8)
                modeled = full_search(block, reference, x0, y0, 8, model_work=True)
                assert modeled.mv == plain.mv
                assert modeled.sad == plain.sad
                assert modeled.ref_reads > 0
                assert modeled.row_coverage.sum() * MB_SIZE == modeled.ref_reads


class TestHalfPelRefinePlane:
    def test_matches_per_mb_refine(self, planes):
        reference, current = planes
        fdx, fdy, fsad = full_search_plane(
            reference, current, BORDER, MB_ROWS, MB_COLS, 8
        )
        dx, dy, sad, evaluated = half_pel_refine_plane(
            reference, current, BORDER, fdx, fdy, fsad
        )
        for mr in range(MB_ROWS):
            for mc in range(MB_COLS):
                y0, x0 = BORDER + mr * MB_SIZE, BORDER + mc * MB_SIZE
                block = current[y0 : y0 + MB_SIZE, x0 : x0 + MB_SIZE]
                full_mv = MotionVector(2 * fdx[mr, mc], 2 * fdy[mr, mc])
                result = half_pel_refine(
                    block, reference, x0, y0, full_mv, int(fsad[mr, mc])
                )
                assert result.mv.dx == dx[mr, mc], (mr, mc)
                assert result.mv.dy == dy[mr, mc], (mr, mc)
                assert result.sad == sad[mr, mc], (mr, mc)
                assert result.candidates_evaluated == evaluated[mr, mc], (mr, mc)


class TestCompensateMany:
    def test_matches_scalar_compensate(self, planes):
        reference, _ = planes
        rng = np.random.RandomState(3)
        n = 24
        ys = BORDER + rng.randint(0, MB_ROWS, n) * MB_SIZE
        xs = BORDER + rng.randint(0, MB_COLS, n) * MB_SIZE
        mv_dx = rng.randint(-15, 16, n)
        mv_dy = rng.randint(-15, 16, n)
        batch = compensate_many(reference, ys, xs, mv_dx, mv_dy, MB_SIZE)
        for i in range(n):
            single = compensate(
                reference,
                int(ys[i]),
                int(xs[i]),
                MotionVector(int(mv_dx[i]), int(mv_dy[i])),
                MB_SIZE,
            )
            assert np.array_equal(batch[i], single), i

    def test_raises_when_any_block_escapes(self, planes):
        reference, _ = planes
        ys = np.array([BORDER])
        xs = np.array([BORDER])
        with pytest.raises(ValueError):
            compensate_many(
                reference, ys, xs, np.array([-2 * BORDER - 2]), np.array([0]), MB_SIZE
            )

    def test_chroma_mv_matches_method(self):
        rng = np.random.RandomState(4)
        dx = rng.randint(-32, 33, 50)
        dy = rng.randint(-32, 33, 50)
        cdx, cdy = chroma_mv(dx, dy)
        for i in range(50):
            cmv = MotionVector(int(dx[i]), int(dy[i])).chroma()
            assert (cdx[i], cdy[i]) == (cmv.dx, cmv.dy), i


class TestPredictMany:
    def test_six_block_layout_matches_scalar(self, planes):
        reference, _ = planes
        rng = np.random.RandomState(5)
        plane_u = padded_plane(6)[: HEIGHT // 2 + 2 * BORDER, : WIDTH // 2 + 2 * BORDER]
        plane_v = padded_plane(7)[: HEIGHT // 2 + 2 * BORDER, : WIDTH // 2 + 2 * BORDER]
        n = 12
        mb_ys = rng.randint(0, MB_ROWS, n) * MB_SIZE
        mb_xs = rng.randint(0, MB_COLS, n) * MB_SIZE
        mv_dx = rng.randint(-10, 11, n)
        mv_dy = rng.randint(-10, 11, n)
        prediction, luma = predict_many(
            reference, plane_u, plane_v, mb_ys, mb_xs, mv_dx, mv_dy, BORDER
        )
        for i in range(n):
            mv = MotionVector(int(mv_dx[i]), int(mv_dy[i]))
            y_full = compensate(
                reference, BORDER + int(mb_ys[i]), BORDER + int(mb_xs[i]), mv, MB_SIZE
            )
            cmv = mv.chroma()
            cy = BORDER + int(mb_ys[i]) // 2
            cx = BORDER + int(mb_xs[i]) // 2
            u = compensate(plane_u, cy, cx, cmv, 8)
            v = compensate(plane_v, cy, cx, cmv, 8)
            assert np.array_equal(prediction[i, 0], y_full[:8, :8]), i
            assert np.array_equal(prediction[i, 1], y_full[:8, 8:]), i
            assert np.array_equal(prediction[i, 2], y_full[8:, :8]), i
            assert np.array_equal(prediction[i, 3], y_full[8:, 8:]), i
            assert np.array_equal(prediction[i, 4], u), i
            assert np.array_equal(prediction[i, 5], v), i
            assert np.array_equal(
                luma[i], np.clip(np.rint(y_full), 0, 255).astype(np.uint8)
            ), i


class TestGatherScatter:
    def test_roundtrip_is_identity(self):
        plane = padded_plane(8)
        blocks = gather_plane_blocks(plane, BORDER, MB_ROWS * 2, MB_COLS * 2, 8)
        copy = plane.copy()
        scatter_plane_blocks(copy, blocks, BORDER)
        assert np.array_equal(copy, plane)

    def test_gather_addresses_interior(self):
        plane = padded_plane(9)
        blocks = gather_plane_blocks(plane, BORDER, MB_ROWS, MB_COLS, MB_SIZE)
        assert np.array_equal(
            blocks[1, 2],
            plane[
                BORDER + MB_SIZE : BORDER + 2 * MB_SIZE,
                BORDER + 2 * MB_SIZE : BORDER + 3 * MB_SIZE,
            ],
        )


class TestIntraDecisions:
    def test_matches_scalar_decision(self, planes):
        _, current = planes
        rng = np.random.RandomState(10)
        cur_blocks = gather_plane_blocks(
            current, BORDER, MB_ROWS, MB_COLS, MB_SIZE
        )
        # Mix tiny and huge SADs so both branches of the decision fire.
        sads = rng.randint(0, 6000, (MB_ROWS, MB_COLS)).astype(np.int64)
        batched = intra_decisions(cur_blocks, sads)
        for mr in range(MB_ROWS):
            for mc in range(MB_COLS):
                scalar = intra_inter_decision(cur_blocks[mr, mc], int(sads[mr, mc]))
                assert batched[mr, mc] == scalar, (mr, mc)
