"""Rendition ladder: specs, encodings, byte-rate traces, determinism."""

from __future__ import annotations

import pytest

from repro.codec import VopDecoder
from repro.codec.renditions import (
    DEFAULT_LADDER,
    LADDER_BY_NAME,
    RenditionSpec,
    encode_ladder,
    encode_rendition,
    validate_ladder,
)
from repro.codec.scalability import _mb_align
from repro.video.synthesis import SceneSpec, SyntheticScene

WIDTH, HEIGHT, N_FRAMES = 48, 32, 6


@pytest.fixture(scope="module")
def frames():
    scene = SyntheticScene(
        SceneSpec.default(WIDTH, HEIGHT, n_objects=1)
    )
    return [scene.frame(i) for i in range(N_FRAMES)]


@pytest.fixture(scope="module")
def ladder(frames):
    return encode_ladder(frames, width=WIDTH, height=HEIGHT)


class TestRenditionSpec:
    def test_default_ladder_is_valid_and_named(self):
        validate_ladder(DEFAULT_LADDER)
        assert [spec.name for spec in DEFAULT_LADDER] == [
            "r0_base", "r1_econ", "r2_main", "r3_high"
        ]
        assert LADDER_BY_NAME["r0_base"].scale == 2
        assert all(spec.scale == 1 for spec in DEFAULT_LADDER[1:])

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            RenditionSpec("bad", scale=3, qp=8)
        with pytest.raises(ValueError):
            RenditionSpec("bad", scale=1, qp=0)
        with pytest.raises(ValueError):
            RenditionSpec("bad", scale=1, qp=8, target_kbps=0)

    def test_invalid_ladders_rejected(self):
        with pytest.raises(ValueError):
            validate_ladder(())
        dup = (DEFAULT_LADDER[0], DEFAULT_LADDER[0])
        with pytest.raises(ValueError):
            validate_ladder(dup)


class TestEncodeLadder:
    def test_rates_and_quality_are_monotone_up_the_ladder(self, ladder):
        rates = [encoding.total_bits for encoding in ladder]
        psnrs = [encoding.mean_psnr_db for encoding in ladder]
        assert rates == sorted(rates)
        assert psnrs == sorted(psnrs)
        assert rates[0] < rates[-1] / 3  # a real spread, not a plateau

    def test_byte_rate_traces_cover_every_frame(self, ladder):
        for encoding in ladder:
            assert len(encoding.frame_bits) == N_FRAMES
            assert len(encoding.frame_psnr_db) == N_FRAMES
            assert all(bits > 0 for bits in encoding.frame_bits)
            assert all(0 < p <= 99.0 for p in encoding.frame_psnr_db)
            kbps = encoding.frame_kbps(40.0)
            assert kbps == tuple(b / 40.0 for b in encoding.frame_bits)
            assert encoding.mean_kbps(40.0) == pytest.approx(
                encoding.total_bits / (N_FRAMES * 40.0)
            )

    def test_base_rung_codes_at_half_resolution(self, ladder):
        base = ladder[0]
        assert base.width == _mb_align(WIDTH // 2)
        assert base.height == _mb_align(HEIGHT // 2)
        assert all(e.width == WIDTH for e in ladder[1:])

    def test_every_rung_decodes_cleanly(self, ladder):
        for encoding in ladder:
            decoded = VopDecoder().decode_sequence(encoding.data)
            assert decoded.is_clean
            assert len(decoded.frames) == N_FRAMES

    def test_deterministic(self, frames, ladder):
        again = encode_ladder(frames, width=WIDTH, height=HEIGHT)
        for a, b in zip(ladder, again):
            assert a.data == b.data
            assert a.frame_bits == b.frame_bits
            assert a.frame_psnr_db == b.frame_psnr_db

    def test_rate_controlled_rung_tracks_its_target(self, frames):
        spec = RenditionSpec("pinned", scale=1, qp=10, target_kbps=30)
        encoding = encode_rendition(frames, spec, WIDTH, HEIGHT)
        # The Q2-style controller holds the mean rate within 2x of the
        # target at this tiny geometry (per-frame floors dominate).
        assert encoding.mean_kbps(40.0) < 2 * 30
