"""Shim for environments without the `wheel` package (offline editable install).

`pip install -e .` requires bdist_wheel; this sandbox has no network to
fetch it, so `python setup.py develop` provides the equivalent editable
install using the metadata in pyproject.toml.
"""

from setuptools import setup

setup()
