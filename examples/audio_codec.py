#!/usr/bin/env python3
"""The paper's audio claim, demonstrated.

Section 1 asserts MPEG-4 audio "will present no problem to cache
performance" because MP3-class codecs work at the frame level with
high-locality filterbanks.  This example encodes and decodes one second
of audio with the MP3-class codec and characterizes it on a simulated
SGI O2 alongside quality and rate numbers.

Run:  python examples/audio_codec.py
"""

import math

import numpy as np

from repro.audio import AudioDecoder, AudioEncoder, AudioSpec, synthesize_audio
from repro.core.machines import SGI_O2
from repro.core.metrics import compute_report
from repro.trace import TraceRecorder


def main() -> None:
    signal = synthesize_audio(AudioSpec(duration_s=1.0))
    print(f"synthesized {len(signal):,} samples at 44.1 kHz")

    hierarchy = SGI_O2.build_hierarchy()
    recorder = TraceRecorder([hierarchy])
    encoder = AudioEncoder(bits_per_frame=3000, recorder=recorder)
    encoded = encoder.encode(signal)
    decoded = AudioDecoder(recorder=recorder).decode(encoded)

    noise = signal - decoded
    snr = 10 * math.log10(float((signal**2).mean()) / float((noise**2).mean()))
    print(f"coded at {encoded.bitrate / 1000:.0f} kbit/s "
          f"({encoded.n_frames} frames), SNR {snr:.1f} dB")

    report = compute_report(hierarchy.total, SGI_O2)
    print("\ncache behaviour on the simulated SGI O2 (R12K, 1 MB L2):")
    print(f"  L1 miss rate : {report.l1_miss_rate:.4%}")
    print(f"  L1 line reuse: {report.l1_line_reuse:.0f}x")
    print(f"  DRAM stall   : {report.dram_time:.2%}")
    print("\nframe-level filterbanks keep the working set (window, scratch,")
    print("tables: ~25 KB) L1-resident -- 'no problem to cache performance',")
    print("exactly as the paper predicted for the audio profile.")


if __name__ == "__main__":
    main()
