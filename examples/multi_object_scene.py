#!/usr/bin/env python3
"""Object-based coding: multiple arbitrary-shape VOs in one scene.

MPEG-4's distinguishing feature over MPEG-1/2 is the object model: each
scene object is a separate video object with its own shape, coded and
transmitted independently (paper Section 1).  This example codes a
background VO plus two elliptical foreground VOs -- shape coded losslessly
with context-based arithmetic coding, texture in MB-aligned bounding
boxes -- then verifies reconstruction per object.

Run:  python examples/multi_object_scene.py
"""

import numpy as np

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.core import Workload, build_workload_inputs
from repro.video import psnr


def main() -> None:
    workload = Workload("demo-3vo", width=352, height=288, n_vos=3, n_layers=1,
                        n_frames=6)
    inputs = build_workload_inputs(workload)
    print(f"scene decomposed into {len(inputs)} video objects:")

    streams = []
    for vo in inputs:
        encoder = VopEncoder(vo.config, vo_id=vo.vo_id)
        encoded = encoder.encode_sequence(vo.frames, vo.masks)
        streams.append((vo, encoded))
        kind = "arbitrary shape" if vo.config.arbitrary_shape else "rectangular"
        print(
            f"  VO {vo.vo_id}: {vo.config.width}x{vo.config.height} ({kind}), "
            f"{len(encoded.data):,} bytes"
        )

    print("\ndecoding each object's stream independently:")
    for vo, encoded in streams:
        decoded = VopDecoder().decode_sequence(encoded.data)
        if vo.masks is None:
            quality = psnr(vo.frames[0].y, decoded.frames[0].y)
        else:
            # Arbitrary-shape VOs are only meaningful inside the shape;
            # outside it the encoder codes padding, not content.
            inside = vo.masks[0] != 0
            diff = (vo.frames[0].y.astype(float) - decoded.frames[0].y.astype(float))
            mse_inside = float((diff[inside] ** 2).mean())
            quality = 10 * np.log10(255.0**2 / max(mse_inside, 1e-9))
        line = f"  VO {vo.vo_id}: luma PSNR {quality:.1f} dB"
        if vo.masks is not None:
            shapes_exact = all(
                np.array_equal(original, recovered)
                for original, recovered in zip(vo.masks, decoded.masks)
            )
            transparent = sum(v.transparent_mbs for v in decoded.vop_stats)
            line += (f", shape lossless: {shapes_exact}, "
                     f"{transparent} transparent MBs skipped")
        print(line)

    total = sum(len(encoded.data) for _, encoded in streams)
    print(f"\ntotal scene payload: {total:,} bytes; objects remain independently")
    print("decodable, composable, and transformable -- the MPEG-4 promise.")


if __name__ == "__main__":
    main()
