#!/usr/bin/env python3
"""Error resilience: streaming a bitstream over a lossy burst channel.

MPEG-4 targets "mobile multimedia" (paper Section 1), where bitstreams
arrive damaged.  This example encodes the same sequence twice -- once
plain, once with the full resilience ladder (resync markers, data
partitioning, reversible VLC) -- then pushes both through a seeded 5%
Gilbert-Elliott burst-loss channel.  The resilient stream additionally
rides XOR-parity FEC with packet interleaving, so single losses per
parity group are repaired before the decoder ever sees them; residual
losses are confined to individual video packets by the resync markers.

A second act corrupts texture bytes in place (the cellular-radio bit
-error case) to show the partitioned syntax at work: the motion marker
keeps motion vectors intact and the reversible VLC salvages coefficient
blocks backward from the far end of the damaged partition.

Run:  python examples/error_resilience.py
"""

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.transport import TransportConfig, transmit_stream
from repro.video import SceneSpec, SyntheticScene, psnr

WIDTH, HEIGHT, N_FRAMES = 176, 144, 6
LOSS_RATE, CHANNEL_SEED = 0.05, 21


def encode(frames, resilient: bool):
    config = CodecConfig(
        WIDTH, HEIGHT, qp=8, gop_size=6, m_distance=1,
        resync_markers=resilient,
        data_partitioning=resilient,
        reversible_vlc=resilient,
    )
    return VopEncoder(config).encode_sequence(frames)


def transmit(stream: bytes, resilient: bool):
    config = TransportConfig(
        max_payload=128,
        loss_rate=LOSS_RATE,
        seed=CHANNEL_SEED,
        fec_group=4 if resilient else 0,
        interleave_depth=4 if resilient else 1,
    )
    return transmit_stream(stream, config)


def mean_luma_psnr(sources, outputs) -> float:
    values = [psnr(src.y, out.y) for src, out in zip(sources, outputs)]
    return sum(min(v, 99.0) for v in values) / len(values)


def lossy_channel_act(frames) -> None:
    print(f"[1] {N_FRAMES} frames at {WIDTH}x{HEIGHT} through a "
          f"Gilbert-Elliott channel at {LOSS_RATE:.0%} loss "
          f"(seed {CHANNEL_SEED})\n")
    rows = []
    for label, resilient in (("plain", False), ("dp+rvlc+fec", True)):
        encoded = encode(frames, resilient)
        result = transmit(encoded.data, resilient)
        decoded = VopDecoder().decode_sequence(
            result.stream, tolerate_errors=True
        )
        rows.append({
            "label": label,
            "bytes": len(encoded.data),
            "sent": result.n_sent_packets,
            "dropped": result.n_dropped,
            "recovered": result.n_recovered,
            "lost_packets": sum(v.lost_packets for v in decoded.vop_stats),
            "psnr": mean_luma_psnr(frames, decoded.frames),
        })

    header = (f"{'config':<14}{'bytes':>8}{'pkts':>6}{'drop':>6}"
              f"{'fec-fix':>9}{'vp-lost':>9}{'PSNR':>10}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['label']:<14}{row['bytes']:>8,}{row['sent']:>6}"
              f"{row['dropped']:>6}{row['recovered']:>9}"
              f"{row['lost_packets']:>9}{row['psnr']:>8.2f}dB")

    plain, resilient = rows
    print(f"\nplain: the burst takes out {plain['dropped']} packet(s) and the "
          f"damage spreads until the next VOP startcode.")
    print(f"resilient: FEC repaired {resilient['recovered']}/"
          f"{resilient['dropped']} drop(s) before decoding; resync markers "
          f"confined the rest to {resilient['lost_packets']} video "
          f"packet(s), concealed from the reference frame.")
    gain = resilient["psnr"] - plain["psnr"]
    print(f"net effect at {LOSS_RATE:.0%} loss: {gain:+.2f} dB mean luma "
          f"PSNR for {resilient['bytes'] - plain['bytes']:+,} bytes of "
          f"overhead.")


def bit_corruption_act(frames) -> None:
    print(f"\n[2] same resilient stream with texture bytes zeroed in place "
          f"(bit errors, not packet loss)\n")
    encoded = encode(frames, resilient=True)
    data = bytearray(encoded.data)
    marker = bytes([0, 0, 1, 0xB8])  # the motion marker
    markers = [
        i for i in range(len(data) - 3) if data[i:i + 4] == marker
    ]
    for position in markers[1:4]:  # damage three texture partitions
        for k in range(6, 9):
            data[position + 4 + k] = 0
    decoded = VopDecoder().decode_sequence(bytes(data), tolerate_errors=True)
    concealed = sum(v.texture_concealed_mbs for v in decoded.vop_stats)
    salvaged = sum(v.rvlc_salvaged_blocks for v in decoded.vop_stats)
    print(f"zeroed 3 bytes inside 3 texture partitions: all "
          f"{len(decoded.frames)} frames decoded, motion vectors survived.")
    print(f"{concealed} macroblock(s) fell back to motion-compensated "
          f"concealment; the reversible VLC salvaged {salvaged} coefficient "
          f"block(s) by decoding backward from the end of each partition.")
    print(f"mean luma PSNR after damage: "
          f"{mean_luma_psnr(frames, decoded.frames):.2f} dB")


def main() -> None:
    scene = SyntheticScene(SceneSpec.default(WIDTH, HEIGHT, n_objects=1))
    frames = [scene.frame(i) for i in range(N_FRAMES)]
    lossy_channel_act(frames)
    bit_corruption_act(frames)


if __name__ == "__main__":
    main()
