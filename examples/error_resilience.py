#!/usr/bin/env python3
"""Error resilience: video packets, corruption recovery, concealment.

MPEG-4 targets "mobile multimedia" (paper Section 1), where bitstreams
arrive damaged.  This example codes a sequence with one video packet per
macroblock row, smashes bytes in the middle of the stream, and decodes it
in error-tolerant mode: the decoder re-synchronizes at the next marker and
conceals lost rows from the reference frame.

Run:  python examples/error_resilience.py
"""

from repro.codec import CodecConfig, VopDecoder, VopEncoder
from repro.video import SceneSpec, SyntheticScene, psnr


def main() -> None:
    width, height, n_frames = 176, 144, 6
    scene = SyntheticScene(SceneSpec.default(width, height, n_objects=1))
    frames = [scene.frame(i) for i in range(n_frames)]

    config = CodecConfig(width, height, qp=8, gop_size=6, m_distance=1,
                         resync_markers=True)
    encoded = VopEncoder(config).encode_sequence(frames)
    print(f"encoded {n_frames} frames with resync markers: "
          f"{len(encoded.data):,} bytes")

    # Vandalize a stretch of the stream.
    broken = bytearray(encoded.data)
    start = len(broken) // 2
    for index in range(start, min(start + 40, len(broken))):
        broken[index] = 0xA5 ^ (index & 0x5A)
    print(f"corrupted 40 bytes at offset {start:,}")

    decoder = VopDecoder()
    decoded = decoder.decode_sequence(bytes(broken), tolerate_errors=True)
    lost = sum(v.lost_packets for v in decoded.vop_stats)
    total_packets = n_frames * (height // 16)
    print(f"decoded all {len(decoded.frames)} frames; lost "
          f"{lost}/{total_packets} video packets to the corruption")

    print("\nper-frame luma PSNR vs the clean source:")
    for index, (source, output) in enumerate(zip(frames, decoded.frames)):
        marker = ""
        stats = next(v for v in decoded.vop_stats if v.display_index == index)
        if stats.lost_packets:
            marker = f"   <- {stats.lost_packets} packet(s) concealed"
        print(f"  frame {index}: {psnr(source.y, output.y):5.1f} dB{marker}")

    print("\nwithout markers the same damage would cost the rest of the VOP;")
    print("with them, loss is confined to the damaged packets.")


if __name__ == "__main__":
    main()
