#!/usr/bin/env python3
"""Capture a workload trace once, replay it through what-if machines.

Cache miss counts are properties of the address stream, so architectural
what-ifs (cache sizes, extra levels, future platforms) don't need the
codec re-run: capture the trace, then replay it through any hierarchy --
including the N-level engine with the paper's IA32/IA64/Power4 models.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.codec import CodecConfig, VopEncoder
from repro.core import EXTENDED_PLATFORMS, SGI_O2
from repro.trace import TraceCapture, TraceRecorder, replay_trace
from repro.video import SceneSpec, SyntheticScene


def main() -> None:
    width, height, n_frames = 176, 144, 4
    scene = SyntheticScene(SceneSpec.default(width, height))
    frames = [scene.frame(i) for i in range(n_frames)]
    config = CodecConfig(width, height, qp=8, gop_size=4, m_distance=2)

    capture = TraceCapture()
    recorder = TraceRecorder([capture])
    VopEncoder(config, recorder).encode_sequence(frames)
    print(f"captured {capture.n_events:,} line events from a "
          f"{width}x{height} encode")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "encode.npz"
        capture.save(path)
        print(f"saved trace: {path.stat().st_size / 1024:.0f} KB compressed\n")

        # What-if 1: the paper's SGI O2.
        o2 = SGI_O2.build_hierarchy()
        replay_trace(path, [o2])
        rate = o2.total.l1_misses / o2.total.memory_accesses
        print(f"{SGI_O2.name:<22} L1 miss {rate:.3%}, "
              f"L2 misses {o2.total.l2_misses:,}")

        # What-if 2..4: the paper's future-work platforms.
        for platform in EXTENDED_PLATFORMS:
            stack = platform.build()
            replay_trace(path, [stack])
            print(f"{platform.name:<22} L1 miss {stack.l1_miss_rate():.3%}, "
                  f"stall {stack.stall_fraction():.1%}")

    print("\nsame address stream, four machines, one codec run --")
    print("the mechanism behind every ablation in benchmarks/.")


if __name__ == "__main__":
    main()
