#!/usr/bin/env python3
"""Mini Figure 2: memory behaviour as the image grows.

The paper's counterintuitive finding: cache performance of MPEG-4 video is
essentially independent of frame size -- and some metrics *improve* as
frames grow.  This example sweeps three resolutions through the decoder on
the 1 MB-L2 machine (scaled down from the paper's sizes so it runs in
about a minute).

Run:  python examples/image_size_sweep.py
"""

from repro.core import SGI_O2, Workload, characterize_decode

SIZES = [(176, 144), (352, 288), (704, 576)]


def main() -> None:
    print("decoding on the simulated SGI O2 (R12K, 1 MB L2):\n")
    print(f"{'resolution':<12} {'L1 miss':>8} {'L2 miss':>8} {'DRAM time':>10} "
          f"{'L2-DRAM MB/s':>13}")
    rows = []
    for width, height in SIZES:
        workload = Workload(f"{width}x{height}", width=width, height=height,
                            n_frames=6)
        result = characterize_decode(workload, machines=(SGI_O2,))
        report = result.reports[SGI_O2.label]
        rows.append(report)
        print(
            f"{width}x{height:<7} {report.l1_miss_rate:>8.3%} "
            f"{report.l2_miss_rate:>8.1%} {report.dram_time:>10.1%} "
            f"{report.l2_dram_bw_mb_s:>13.1f}"
        )

    print("\nmemory requirements grow ~linearly with the pixels, yet the")
    print("miss ratios stay flat: the 16x16/8x8 blocking dictated by the")
    print("MPEG-4 protocol makes image size largely irrelevant to the cache.")
    growth = rows[-1].l1_miss_rate / max(rows[0].l1_miss_rate, 1e-9)
    print(f"L1 miss-rate change across a 16x pixel growth: {growth:.2f}x")


if __name__ == "__main__":
    main()
