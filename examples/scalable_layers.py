#!/usr/bin/env python3
"""Scalable (two-VOL) coding: base layer plus spatial enhancement.

Each video object can be coded in multiple video object layers; receivers
decode the base layer alone for a low-resolution preview or add the
enhancement layer for full quality (paper Section 2.1).  This example
codes one scene both ways and compares rate and quality.

Run:  python examples/scalable_layers.py
"""

from repro.codec import CodecConfig
from repro.codec.scalability import ScalableDecoder, ScalableEncoder
from repro.video import SceneSpec, SyntheticScene, psnr
from repro.video.yuv import upsample_plane


def main() -> None:
    width, height, n_frames = 352, 288, 8
    scene = SyntheticScene(SceneSpec.default(width, height, n_objects=2))
    frames = [scene.frame(i) for i in range(n_frames)]

    config = CodecConfig(width=width, height=height, qp=8, gop_size=8, m_distance=1)
    encoder = ScalableEncoder(config)
    encoded = encoder.encode_sequence(frames)
    print(f"two-layer encoding of {n_frames} frames at {width}x{height}:")
    print(f"  base layer        : {encoder.base_width}x{encoder.base_height}, "
          f"{len(encoded.base.data):,} bytes")
    print(f"  enhancement layer : {width}x{height}, "
          f"{len(encoded.enhancement.data):,} bytes")

    full = ScalableDecoder().decode(encoded)

    base_only = [
        upsample_plane(recon.y)[:height, :width]
        for recon in encoded.base.reconstructions
    ]
    base_psnr = sum(psnr(f.y, b) for f, b in zip(frames, base_only)) / n_frames
    full_psnr = sum(psnr(f.y, d.y) for f, d in zip(frames, full)) / n_frames
    print(f"\n  base-only quality (upsampled): {base_psnr:.1f} dB")
    print(f"  base + enhancement quality   : {full_psnr:.1f} dB")
    print(f"  enhancement gain             : {full_psnr - base_psnr:+.1f} dB")
    print("\nreceivers pay bits only for the quality they use -- and the")
    print("paper shows the extra layer costs the memory system nothing.")


if __name__ == "__main__":
    main()
