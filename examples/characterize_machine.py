#!/usr/bin/env python3
"""Characterize MPEG-4 memory behaviour on the paper's three SGI machines.

Demonstrates the study half of the library: the instrumented codec feeds
one simulated memory hierarchy per machine, and the perfex-style metrics
of Section 3.1 come out the other end -- the exact experiment of the
paper, at a demo-friendly resolution.

Run:  python examples/characterize_machine.py
"""

from repro.core import STUDY_MACHINES, Workload, characterize_decode, characterize_encode


def show(result) -> None:
    print(f"\n{result.direction} -- {result.workload.label} "
          f"(footprint {result.footprint_bytes / 1e6:.0f} MB)")
    header = (f"  {'machine':<10} {'L1 miss':>8} {'L1 reuse':>9} {'L2 miss':>8} "
              f"{'DRAM time':>9} {'bus use':>8}")
    print(header)
    for machine in STUDY_MACHINES:
        report = result.reports[machine.label]
        print(
            f"  {machine.label:<10} {report.l1_miss_rate:>8.3%} "
            f"{report.l1_line_reuse:>9.0f} {report.l2_miss_rate:>8.1%} "
            f"{report.dram_time:>9.1%} {report.bus_utilization:>8.2%}"
        )


def main() -> None:
    workload = Workload("demo", width=352, height=288, n_vos=1, n_layers=1,
                        n_frames=9)
    print("Running the instrumented encoder/decoder against simulated")
    print("SGI O2 (R12K/1MB), Onyx (R10K/2MB) and Onyx2 (R12K/8MB)...")
    encode = characterize_encode(workload)
    show(encode)
    decode = characterize_decode(workload, encoded=encode.encoded)
    show(decode)

    print("\nThe paper's conclusions, visible even at this small scale:")
    onyx_encode = encode.reports["R10K 2MB"]
    onyx_decode = decode.reports["R10K 2MB"]
    print(f"  - L1 hit rates are ~optimal "
          f"(encode {1 - onyx_encode.l1_miss_rate:.2%}, "
          f"decode {1 - onyx_decode.l1_miss_rate:.2%})")
    print(f"  - each L1 line is reused ~{onyx_encode.l1_line_reuse:.0f}x while "
          f"encoding: 'streaming MPEG-4' does not really stream")
    print(f"  - DRAM stalls {onyx_decode.dram_time:.1%} of decode time: "
          f"not latency bound")
    print(f"  - bus use is {onyx_decode.bus_utilization:.1%} of 680 MB/s: "
          f"not bandwidth bound")


if __name__ == "__main__":
    main()
