#!/usr/bin/env python3
"""Quickstart: synthesize video, encode it to an MPEG-4 stream, decode it back.

Demonstrates the codec half of the library: scene synthesis, I/P/B
encoding with rate control, the startcode-delimited bitstream, and the
bit-exact decoder.

Run:  python examples/quickstart.py
"""

from repro.codec import CodecConfig, VopDecoder, VopEncoder, VopType
from repro.video import SceneSpec, SyntheticScene, psnr


def main() -> None:
    # A 30-frame scene with one moving object over a textured background.
    width, height, n_frames = 352, 288, 30
    scene = SyntheticScene(SceneSpec.default(width, height, n_objects=1))
    frames = [scene.frame(i) for i in range(n_frames)]

    # Classic I B B P GOP structure with a bitrate target.
    config = CodecConfig(
        width=width,
        height=height,
        qp=8,
        gop_size=12,
        m_distance=3,
        target_bitrate=512_000,
        frame_rate=30.0,
    )

    encoder = VopEncoder(config)
    encoded = encoder.encode_sequence(frames)
    kbps = encoded.total_bits / (n_frames / config.frame_rate) / 1000
    print(f"encoded {n_frames} frames of {width}x{height}")
    print(f"  stream size : {len(encoded.data):,} bytes ({kbps:.0f} kbit/s)")
    for vop_type in (VopType.I, VopType.P, VopType.B):
        count = sum(1 for v in encoded.stats.vops if v.vop_type is vop_type)
        mean_bits = encoded.stats.mean_bits(vop_type)
        print(f"  {vop_type.name}-VOPs: {count:2d} at {mean_bits:8.0f} bits each")

    decoder = VopDecoder()
    decoded = decoder.decode_sequence(encoded.data)
    print(f"decoded {len(decoded.frames)} frames (display order restored)")

    # The decode loop is drift free: decoder output equals the encoder's
    # own reconstruction, bit for bit.
    drift_free = all(
        (d.y == r.y).all()
        for d, r in zip(decoded.frames, encoded.reconstructions)
    )
    print(f"  bit-exact with encoder reconstruction: {drift_free}")

    quality = [psnr(frame.y, out.y) for frame, out in zip(frames, decoded.frames)]
    print(f"  luma PSNR: min {min(quality):.1f} dB, mean "
          f"{sum(quality) / len(quality):.1f} dB")


if __name__ == "__main__":
    main()
